//! The sharded serve engine: continuous batching over `SelectiveSession`s.
//!
//! `ServeEngine::run` owns the whole lifecycle of a request batch:
//!
//! 1. requests are admitted through a [`BoundedQueue`] (back-pressure);
//! 2. each of `shards` worker threads pulls requests, prefills them, and
//!    binds the session to a fresh [`KvTier`] namespace and a
//!    [`BlockCache`] drawing on the engine-wide [`CacheBudget`];
//! 3. every scheduler tick steps each ready session once through the
//!    shard's single [`SessionScratch`] (continuous batching: sessions at
//!    different depths coexist in one tick loop, finished sessions retire
//!    and free their slot for the next queued request);
//! 4. completions carry per-session stats; the report adds the tier-wide
//!    aggregate, queue high-water, and per-shard busy time.
//!
//! Scheduling never changes results: a token decoded here is bit-identical
//! to the same session run alone through `SelectiveSession::decode`
//! (locked down by `tests/serve_equivalence.rs`).
//!
//! ## Fault tolerance
//!
//! Per-request failure is a normal state, not an abort. Every recoverable
//! fault — a panicking session, an exhausted page pool, a blown deadline,
//! an admission shed — is contained to the session it hit: the session
//! becomes a [`Completion`] carrying a [`FailureCause`], its slot frees for
//! the next request, and every other session keeps its bit-identical
//! results (locked down by `tests/chaos.rs`). Only a config rejection fails
//! the whole run, as a typed `Err` from [`ServeEngine::run`]. A seeded
//! [`FaultPlan`] threaded through [`ServeConfig::faults`] provokes each
//! fault class deterministically at chosen points.
//!
//! ## Crash recovery
//!
//! Three layers turn whole-worker loss and silent store corruption into
//! recoverable, bounded events:
//!
//! - **Checkpointing** ([`ServeConfig::checkpoint_every_ticks`]): every k
//!   ticks each resident session is snapshotted *without being evicted*
//!   ([`SelectiveSession::checkpoint`]): the GPU-resident rows offload into
//!   a pinned swap namespace, the host middle store is forked
//!   copy-on-write, and the policy is deep-copied. Snapshots live in a
//!   registry shared across shards; bytes and counts are metered
//!   ([`ShardStats::checkpoints`], [`ShardStats::checkpoint_bytes`]).
//! - **Shard failover**: when a worker dies mid-run (a real panic, or an
//!   injected [`WorkerKill`](crate::faults::WorkerKill)), the run keeps
//!   going. After the joins, each of the dead shard's in-flight sessions
//!   that has a checkpoint is resumed and **replayed forward** on a healthy
//!   shard — completions bit-identical to the fault-free run, each request
//!   completing exactly once. In-flight sessions with no checkpoint fail
//!   with the typed [`ServeError::ShardLost`] cause. Recovery replay runs
//!   on the coordinator thread with no fault injection and no deadline
//!   reaping (the failover host is assumed healthy; wall deadlines keep
//!   ticking only in the report's wall clock).
//! - **Integrity**: every KV page carries a checksum verified on fetch
//!   (`pqc_memhier`), so corrupted bytes — e.g. an injected
//!   [`BitFlip`](crate::faults::BitFlip) — are *never served*: the step
//!   fails typed, and the session rolls back to its last good checkpoint
//!   and replays ([`ShardStats::rollbacks`]), or fails with
//!   [`ServeError::KvCorruption`] when no checkpoint exists.
//!
//! Accounting slack under recovery: a failed-over or rolled-back
//! completion carries its pre-checkpoint traffic plus the replay's, but
//! the lost worker's post-checkpoint traffic stays only in the tier
//! aggregate — so `aggregate_transfer` can exceed the per-completion sum
//! on runs that recovered (it still equals it on fault-free runs).

use crate::error::{FailureCause, RetryPolicy, ServeError};
use crate::faults::{FaultPlan, InjectedPanic};
use crate::latency::LatencySummary;
use crate::overload::{OverloadController, OverloadSummary, PressureLevel, PressureSample};
use crate::queue::BoundedQueue;
use pqc_cache::{BlockCache, CacheBudget, CacheStats};
use pqc_core::{
    panic_message, ConfigError, SelectiveSession, SessionConfig, SessionResources, SessionScratch,
    StepError, SuspendedSession,
};
use pqc_llm::{Model, PrefillJob, PrefillOutput};
use pqc_memhier::{
    KvTier, MemError, PrefixCacheStats, SharingStats, TransferStats, DEFAULT_PAGE_TOKENS,
};
use pqc_policies::{SelectionPolicy, SharedPolicyState};
use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Poison-tolerant lock: the recovery structures' invariants (plain maps
/// and vectors) survive any interrupted critical section, and a dead
/// worker must not cascade lock panics into the shards doing the failover.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Scheduling class of a request. Admission pops the highest class first
/// (FIFO within a class), and a queued request **strictly** outranking a
/// running session preempts it: the victim is suspended through the paged
/// host tier ([`SelectiveSession::suspend`]) and resumed later — bit
/// identically — once a slot frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: preempted by anything higher whenever slots are
    /// contended.
    Low,
    /// The default class; FIFO among itself, never preempts `Low`… unless
    /// slots are contended.
    #[default]
    Normal,
    /// Latency-sensitive work: skips the queue and claims a slot from a
    /// lower-class session when none is free.
    High,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 3;

    /// Dense index of this class (`Low` = 0, `Normal` = 1, `High` = 2) —
    /// keys per-class arrays like [`ServeReport::latency_by_priority`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How requests map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardAssignment {
    /// One shared queue; whichever worker has a free slot first takes the
    /// request. Work-conserving — the right default for live traffic.
    #[default]
    FirstFree,
    /// Request `i` goes to shard `i mod shards` through per-shard queues.
    /// Deterministic placement and balance independent of OS scheduling —
    /// what benchmarks and placement-sensitive tests want (on a host with
    /// fewer cores than shards, first-free lets one timesliced worker
    /// drain the queue while the rest starve, which skews per-shard load).
    RoundRobin,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one shard of the session pool.
    pub shards: usize,
    /// Continuous-batching width: sessions decoded per shard per tick.
    pub max_active_per_shard: usize,
    /// Admission-queue bound across all shards (back-pressure on the
    /// producer). Round-robin splits it evenly over the per-shard queues,
    /// so it must be ≥ `shards` in that mode.
    pub queue_capacity: usize,
    /// Request→shard placement.
    pub assignment: ShardAssignment,
    /// Per-session engine configuration (segmentation, budgets, cache).
    pub session: SessionConfig,
    /// Sessions' worth of GPU cache backing the global [`CacheBudget`];
    /// `None` sizes it for the peak concurrency (`shards ×
    /// max_active_per_shard`), which reproduces standalone cache behaviour
    /// exactly. Smaller values exercise cross-session cache pressure.
    pub cache_budget_sessions: Option<usize>,
    /// Record per-step logits and selected-token sets in each completion
    /// (the equivalence battery's evidence; costs memory).
    pub record_trace: bool,
    /// Parallelise prefill across kv heads inside a worker. Off by default:
    /// shard workers are the parallelism axis, and nesting head threads
    /// under every worker oversubscribes the host.
    pub prefill_parallel: bool,
    /// Share host KV pages and trained PQ/IVF state across sessions whose
    /// prompts are identical (vLLM-style prefix caching on the paged tier).
    /// On by default — sharing is exact, so results are bit-identical to a
    /// cold start; turn off to model a fleet without prefix reuse.
    pub prefix_cache: bool,
    /// Host-tier page size in tokens (the paged `KvTier` granularity).
    pub page_tokens: usize,
    /// Chunked prefill: cap prompt rows prefilled per scheduler tick.
    /// `None` (the default) prefills each prompt monolithically at
    /// admission — decode on the shard halts for the whole prompt. `Some`
    /// splits prefill into tick-sized chunks interleaved with ready decode
    /// steps, bounding head-of-line blocking: a long prompt no longer
    /// freezes its neighbours' TPOT. Chunking never changes results —
    /// prefill is chunk-invariant by construction (`Model::begin_prefill`).
    pub prefill_chunk_tokens: Option<usize>,
    /// Deterministic fault-injection plan (chaos testing). `None` injects
    /// nothing; real faults flow through the same reporting paths either
    /// way.
    pub faults: Option<FaultPlan>,
    /// Crash-recovery checkpoint cadence: every `k` scheduler ticks each
    /// resident session is snapshotted through the paged host tier
    /// ([`SelectiveSession::checkpoint`] — pinned swap pages + a
    /// copy-on-write fork of the middle store, no eviction, no extra
    /// middle-store copies) into a registry shared across shards. A shard
    /// that later dies fails its checkpointed sessions over to healthy
    /// shards; a session whose store turns out corrupt rolls back to its
    /// snapshot. `None` (the default) checkpoints nothing — sessions on a
    /// dead shard are lost with [`ServeError::ShardLost`]. Checkpointing
    /// never changes results; it costs the periodic offload of the
    /// GPU-resident rows (metered in [`ShardStats::checkpoint_bytes`]).
    pub checkpoint_every_ticks: Option<u64>,
    /// Brownout overload control: each shard runs an
    /// [`crate::OverloadController`] that samples pressure every tick and
    /// stages degrade actions (effort reduction for Low/Normal sessions
    /// within a recall floor, Low-admission deferral, checkpoint-cadence
    /// stretch, Critical-only shedding) that reverse as pressure clears.
    /// `None` (the default) disables the controller entirely — the engine
    /// is then **bit-identical** to one built without brownout support:
    /// no effort calls are made and no degraded path is evaluated.
    pub overload: Option<crate::OverloadConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            max_active_per_shard: 4,
            queue_capacity: 16,
            assignment: ShardAssignment::FirstFree,
            session: SessionConfig::default(),
            cache_budget_sessions: None,
            record_trace: false,
            prefill_parallel: false,
            prefix_cache: true,
            page_tokens: DEFAULT_PAGE_TOKENS,
            prefill_chunk_tokens: None,
            faults: None,
            checkpoint_every_ticks: None,
            overload: None,
        }
    }
}

impl ServeConfig {
    /// Validate, returning the first offending field as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::new("shards", "need at least one shard"));
        }
        if self.max_active_per_shard == 0 {
            return Err(ConfigError::new(
                "max_active_per_shard",
                "need at least one session slot per shard",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "queue capacity must be positive"));
        }
        if self.page_tokens == 0 {
            return Err(ConfigError::new("page_tokens", "page size must be positive"));
        }
        if self.prefill_chunk_tokens == Some(0) {
            return Err(ConfigError::new(
                "prefill_chunk_tokens",
                "chunk budget must be positive (use None for monolithic prefill)",
            ));
        }
        if self.assignment == ShardAssignment::RoundRobin && self.queue_capacity < self.shards {
            return Err(ConfigError::new(
                "queue_capacity",
                "round-robin needs queue capacity >= shards (one slot per shard queue)",
            ));
        }
        if self.checkpoint_every_ticks == Some(0) {
            return Err(ConfigError::new(
                "checkpoint_every_ticks",
                "checkpoint cadence must be positive (use None to disable checkpointing)",
            ));
        }
        if let Some(plan) = &self.faults {
            if plan.page_limit == Some(0) {
                return Err(ConfigError::new("faults", "page_limit 0 would reject every page"));
            }
        }
        if let Some(overload) = &self.overload {
            overload.validate()?;
            // Effort-floor consistency against the session's routing: a
            // probe floor wider than the configured probe width could
            // never be honoured (capping at min_n_probe would *raise*
            // effort above construction-time behaviour).
            if let pqc_core::IvfMode::Probe(n_probe) = self.session.ivf {
                if overload.min_n_probe > n_probe {
                    return Err(ConfigError::new(
                        "overload.min_n_probe",
                        format!(
                            "probe floor {} exceeds the session's configured probe width \
                             {n_probe} — the floor could never take effect",
                            overload.min_n_probe
                        ),
                    ));
                }
            }
        }
        self.session.validate()
    }

    /// [`Self::validate`], panicking on the first error — for call sites
    /// that treat a bad config as a programming bug.
    pub fn validate_strict(&self) {
        if let Err(e) = self.validate() {
            panic!("{}", e.message);
        }
    }

    /// Peak concurrent sessions the engine will run.
    pub fn peak_sessions(&self) -> usize {
        self.shards * self.max_active_per_shard
    }
}

/// One admission: a prompt plus how many tokens to decode greedily.
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the completion (must be unique).
    pub id: u64,
    /// Prompt tokens (must satisfy the session's segmentation minimum).
    pub tokens: Vec<u32>,
    /// Greedy decode steps to run after prefill.
    pub decode_steps: usize,
    /// Selection policy instance for this session.
    pub policy: Box<dyn SelectionPolicy + Send>,
    /// Optional deadline in scheduler ticks (the engine's deterministic
    /// clock): a session still decoding `deadline` ticks after admission is
    /// reaped with [`ServeError::DeadlineExceeded`]. `None` never expires.
    pub deadline: Option<u64>,
    /// Optional wall-clock deadline, measured from the run's epoch (batch
    /// arrival): a request still in flight this long after admission is
    /// reaped with the same [`ServeError::DeadlineExceeded`] taxonomy, the
    /// tick fields carrying **milliseconds**. Unlike [`Self::deadline`]
    /// this follows real time — it is an SLO class, not a reproducible
    /// schedule bound. `None` never expires.
    pub wall_deadline: Option<Duration>,
    /// Earliest per-shard scheduler tick at which this request may be
    /// admitted (0 = immediately). Set from a trace's `arrival_tick` to
    /// replay recorded traffic time-accurately: the serving shard holds
    /// the request — without consuming an admission retry — until its
    /// clock reaches this tick. Deterministic under round-robin placement
    /// (each shard's clock is its own); under first-free placement the
    /// serving shard, and so the gating clock, depends on OS scheduling.
    pub arrival_tick: u64,
    /// Bounded-retry policy applied when admission rejects the request.
    pub retry: RetryPolicy,
    /// Scheduling class. `Normal` (the default) keeps exact FIFO among
    /// itself; `High` is admitted first and may preempt a strictly
    /// lower-class running session when no slot is free.
    pub priority: Priority,
}

impl ServeRequest {
    /// A request with no deadline, normal priority, and the default retry
    /// policy.
    pub fn new(
        id: u64,
        tokens: Vec<u32>,
        decode_steps: usize,
        policy: Box<dyn SelectionPolicy + Send>,
    ) -> Self {
        Self {
            id,
            tokens,
            decode_steps,
            policy,
            deadline: None,
            wall_deadline: None,
            arrival_tick: 0,
            retry: RetryPolicy::default(),
            priority: Priority::default(),
        }
    }

    /// Set a deadline in scheduler ticks.
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.deadline = Some(ticks);
        self
    }

    /// Set a wall-clock deadline (an SLO class — see
    /// [`Self::wall_deadline`] for the clock and reporting convention).
    pub fn with_wall_deadline(mut self, deadline: Duration) -> Self {
        self.wall_deadline = Some(deadline);
        self
    }

    /// Hold admission until the serving shard's clock reaches `tick`
    /// (time-accurate trace replay — see [`Self::arrival_tick`]).
    pub fn with_arrival_tick(mut self, tick: u64) -> Self {
        self.arrival_tick = tick;
        self
    }

    /// Override the admission retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// What the first session to serve a prompt leaves behind in the tier's
/// prefix registry, alongside the refcounted KV pages: the deterministic
/// prefill output (logits, score captures) and the trained PQ/IVF policy
/// snapshot. Later sessions with the same prompt adopt all three and skip
/// prefill, offload, and clustering entirely.
struct SharedPrefix {
    prefill: PrefillOutput,
    policy: Option<SharedPolicyState>,
}

/// Per-step evidence captured when [`ServeConfig::record_trace`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// The step's classifier logits.
    pub logits: Vec<f32>,
    /// Selected middle tokens (absolute ids), `[layer][kv_head]`.
    pub selected: Vec<Vec<Vec<usize>>>,
}

/// A finished request — successfully decoded, or failed/shed with a typed
/// cause ([`Self::failure`]). Every admitted request produces exactly one.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Shard (worker) that served the session.
    pub shard: usize,
    /// Greedy-decoded tokens: `decode_steps` of them on success, however
    /// many the session managed before failing otherwise.
    pub generated: Vec<u32>,
    /// This session's host-transfer stats (its KvTier namespace).
    pub transfer: TransferStats,
    /// This session's GPU block-cache stats.
    pub cache: CacheStats,
    /// Prefix-sharing stats: prompt tokens adopted from the prefix cache
    /// and copy-on-write page copies this session triggered.
    pub sharing: SharingStats,
    /// Per-step trace (empty unless [`ServeConfig::record_trace`]).
    pub trace: Vec<StepTrace>,
    /// Why the session failed (`None` = clean completion).
    pub failure: Option<FailureCause>,
    /// Admission retries this request consumed before being served or shed.
    pub retries: u32,
    /// Scheduling class the request ran at.
    pub priority: Priority,
    /// Time-to-first-token, wall clock from batch arrival (includes queue
    /// wait and head-of-line blocking). `None` when the request never
    /// produced a first token (shed, or reaped mid-prefill).
    pub ttft_wall: Option<Duration>,
    /// Time-to-first-token in scheduler ticks from admission: 0 for
    /// monolithic or prefix-adopted prefill (one admission event), the
    /// chunk-tick count under chunked prefill. Deterministic run over run.
    pub ttft_ticks: Option<u64>,
    /// Mean wall time per decoded token. `None` when nothing was decoded.
    pub tpot_wall: Option<Duration>,
    /// Times this session was preempted (suspended to the host tier and
    /// later resumed) by a higher-priority request.
    pub preemptions: u32,
    /// True when crash recovery produced this completion: the session was
    /// replayed forward from a checkpoint after its shard's worker died,
    /// or rolled back to a checkpoint after store corruption. Recovered
    /// output is bit-identical to the fault-free run.
    pub recovered: bool,
    /// Highest [`PressureLevel`] at which this session decoded a token
    /// under *reduced* effort. `Nominal` means every token was produced
    /// at full effort — always the case for High-priority sessions, for
    /// runs with the controller disabled, and for requests that never
    /// decoded. Survives preemption and checkpoint failover.
    pub max_degrade_level: PressureLevel,
}

impl Completion {
    /// True when the request decoded everything it asked for.
    pub fn is_success(&self) -> bool {
        self.failure.is_none()
    }
}

/// Per-shard scheduling statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Sessions admitted on this shard.
    pub admitted: u64,
    /// Sessions that failed or were shed on this shard.
    pub failed: u64,
    /// Decode tokens requested but never produced (shed at admission,
    /// reaped by deadline, or lost to a mid-decode fault).
    pub shed_tokens: u64,
    /// Decode session-steps executed while the shard's brownout
    /// controller sat at a non-`Nominal` [`PressureLevel`] — exactly the
    /// steps served under degradation pressure (whether or not the
    /// individual session's effort was reduced; High-priority steps under
    /// a pressured shard count). Always 0 with the controller disabled.
    pub degraded_steps: u64,
    /// Session-steps skipped while the shard was stalled by an injected
    /// slow-shard fault (sessions held but not decoded that tick).
    pub stalled_steps: u64,
    /// Scheduler ticks spent at each pressure rung (indexed by
    /// [`PressureLevel::index`]); all-zero with the controller disabled.
    pub level_ticks: [u64; PressureLevel::COUNT],
    /// Decode tokens produced under reduced (non-full) effort.
    pub degraded_tokens: u64,
    /// Low-priority admissions deferred by the controller at `Saturated`
    /// (every deferral counts, including re-deferrals of the same
    /// request).
    pub deferrals: u64,
    /// Requests shed by the controller at `Critical` (disjoint from
    /// fault-plan and deadline sheds).
    pub overload_sheds: u64,
    /// Admission retries performed (re-attempts after a rejection).
    pub retries: u64,
    /// Priority preemptions performed: a running session suspended through
    /// the paged host tier to free its slot for a higher-class request.
    pub preemptions: u64,
    /// Prefill chunks executed (0 unless
    /// [`ServeConfig::prefill_chunk_tokens`] is set).
    pub prefill_chunks: u64,
    /// Checkpoint snapshots taken on this shard (0 unless
    /// [`ServeConfig::checkpoint_every_ticks`]).
    pub checkpoints: u64,
    /// Bytes offloaded device→host by checkpoint snapshots (the recurring
    /// cost of crash recovery; the copy-on-write store fork moves nothing).
    pub checkpoint_bytes: u64,
    /// Sessions this shard served by replaying a dead shard's checkpoint
    /// forward (metered on the *failover target*, not the dead shard).
    pub recovered_sessions: u64,
    /// Decode tokens produced during failover replay (post-checkpoint
    /// tokens the dead shard lost and this shard regenerated).
    pub recovered_tokens: u64,
    /// Sessions rolled back to their last checkpoint after a KV page
    /// failed its checksum mid-decode.
    pub rollbacks: u64,
    /// Wall time spent prefilling + decoding (excludes queue waits).
    /// Caveat: on a host with fewer cores than shards this includes time
    /// preempted by sibling workers — use a per-shard single-thread run
    /// (as `benches/serve_throughput.rs` does) to model one-core-per-shard
    /// occupancy.
    pub busy: Duration,
}

/// Everything `ServeEngine::run` produces.
#[derive(Debug)]
pub struct ServeReport {
    /// Completions, sorted by request id (failed ones carry
    /// [`Completion::failure`]).
    pub completions: Vec<Completion>,
    /// Tier-wide transfer aggregate (equals the sum of per-completion
    /// transfer stats — asserted by the equivalence battery).
    pub aggregate_transfer: TransferStats,
    /// Highest queue occupancy observed (≤ the configured bound).
    pub queue_high_water: usize,
    /// Prefix-cache registry counters (lookups, full/partial hits, entries).
    pub prefix: PrefixCacheStats,
    /// Tier-wide sharing aggregate (equals the sum of per-completion
    /// [`Completion::sharing`]).
    pub aggregate_sharing: SharingStats,
    /// Peak host-tier footprint over the run: distinct pages held at the
    /// busiest instant × page bytes. With prefix sharing on, a fleet of
    /// identical prompts peaks near O(unique tokens) instead of
    /// O(sessions × tokens).
    pub peak_host_bytes: u64,
    /// Per-shard scheduling stats.
    pub shards: Vec<ShardStats>,
    /// True if the shared cache budget ever observed a release/acquire
    /// imbalance (saturated instead of underflowing — a bug latch, not an
    /// abort).
    pub budget_underflow: bool,
    /// Worker threads that aborted outright instead of returning (always 0
    /// unless something escapes the per-session isolation; the engine
    /// absorbs the loss and still reports).
    pub worker_panics: u64,
    /// TTFT/TPOT percentile summary across completions (only requests that
    /// reached the respective event contribute — see [`LatencySummary`]).
    pub latency: LatencySummary,
    /// [`latency`](Self::latency) broken down by [`Priority`] class,
    /// indexed by [`Priority::index`] — the brownout contract ("High never
    /// degrades") is checked against these, not the blended summary.
    pub latency_by_priority: [LatencySummary; Priority::COUNT],
    /// Brownout-controller aggregate across shards: ticks at each pressure
    /// rung, degraded tokens, deferrals, and overload sheds. All-zero when
    /// [`ServeConfig::overload`] is `None`.
    pub overload: OverloadSummary,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl ServeReport {
    /// Total decoded tokens across completions.
    pub fn tokens_decoded(&self) -> u64 {
        self.completions.iter().map(|c| c.generated.len() as u64).sum()
    }

    /// The completion for a request id, if present.
    pub fn completion(&self, id: u64) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// Completions that failed, with their causes.
    pub fn failures(&self) -> impl Iterator<Item = &Completion> {
        self.completions.iter().filter(|c| c.failure.is_some())
    }

    /// Completions that decoded everything they asked for.
    pub fn successes(&self) -> impl Iterator<Item = &Completion> {
        self.completions.iter().filter(|c| c.failure.is_none())
    }

    /// Total decode tokens requested but never produced.
    pub fn total_shed_tokens(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_tokens).sum()
    }

    /// Total decode session-steps served while a shard's pressure level
    /// was non-`Nominal` (0 with the controller disabled).
    pub fn total_degraded_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.degraded_steps).sum()
    }

    /// Total session-steps lost to injected shard stalls.
    pub fn total_stalled_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.stalled_steps).sum()
    }

    /// The latency summary for one [`Priority`] class.
    pub fn latency_for(&self, priority: Priority) -> &LatencySummary {
        &self.latency_by_priority[priority.index()]
    }

    /// Total priority preemptions across shards.
    pub fn total_preemptions(&self) -> u64 {
        self.shards.iter().map(|s| s.preemptions).sum()
    }

    /// Total checkpoint snapshots across shards.
    pub fn total_checkpoints(&self) -> u64 {
        self.shards.iter().map(|s| s.checkpoints).sum()
    }

    /// Total checkpoint device→host bytes across shards.
    pub fn total_checkpoint_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.checkpoint_bytes).sum()
    }

    /// Total sessions recovered by failover replay.
    pub fn total_recovered_sessions(&self) -> u64 {
        self.shards.iter().map(|s| s.recovered_sessions).sum()
    }

    /// Total decode tokens regenerated by failover replay.
    pub fn total_recovered_tokens(&self) -> u64 {
        self.shards.iter().map(|s| s.recovered_tokens).sum()
    }

    /// Total corruption rollbacks across shards.
    pub fn total_rollbacks(&self) -> u64 {
        self.shards.iter().map(|s| s.rollbacks).sum()
    }

    /// The busiest shard's occupied time — the modelled wall-clock of the
    /// run on a host with one core per shard (shards share nothing on the
    /// decode path, so their busy intervals overlap there).
    pub fn max_shard_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).max().unwrap_or(Duration::ZERO)
    }
}

/// An in-flight session on a shard.
struct Active<'m> {
    id: u64,
    session: SelectiveSession<'m>,
    next: u32,
    remaining: usize,
    generated: Vec<u32>,
    trace: Vec<StepTrace>,
    /// Per-shard tick at which the session was admitted (deadline base).
    admitted_tick: u64,
    deadline: Option<u64>,
    /// Wall clock from the run's epoch at admission (wall-deadline base).
    admitted_wall: Duration,
    wall_deadline: Option<Duration>,
    retries: u32,
    priority: Priority,
    /// Set when the first token became known (end of prefill / adoption).
    ttft_wall: Option<Duration>,
    ttft_ticks: Option<u64>,
    /// Wall time spent in this session's decode steps.
    decode_wall: Duration,
    /// Transfer metered outside the live session's namespace: suspend/
    /// resume swap traffic from earlier preemption round trips.
    extra_transfer: TransferStats,
    /// Cache stats from caches dropped by earlier suspends (a resume binds
    /// a fresh budget-backed cache).
    extra_cache: CacheStats,
    preemptions: u32,
    /// True once crash recovery touched this session (checkpoint rollback).
    recovered: bool,
    /// Highest pressure rung at which this session decoded under reduced
    /// effort (see [`Completion::max_degrade_level`]).
    max_degrade: PressureLevel,
}

/// A request whose prompt is mid-prefill under chunked admission: it holds
/// a session slot (its KV is being built) but has no session yet.
struct Prefilling<'m> {
    id: u64,
    job: PrefillJob<'m>,
    tokens: Vec<u32>,
    policy: Box<dyn SelectionPolicy + Send>,
    decode_steps: usize,
    admitted_tick: u64,
    deadline: Option<u64>,
    admitted_wall: Duration,
    wall_deadline: Option<Duration>,
    retries: u32,
    priority: Priority,
}

/// A preempted session parked in the paged host tier: its pages sit pinned
/// off-slot until a slot frees (or its deadline reaps it while parked).
struct Parked {
    id: u64,
    suspended: SuspendedSession,
    next: u32,
    remaining: usize,
    generated: Vec<u32>,
    trace: Vec<StepTrace>,
    admitted_tick: u64,
    deadline: Option<u64>,
    admitted_wall: Duration,
    wall_deadline: Option<Duration>,
    retries: u32,
    priority: Priority,
    ttft_wall: Option<Duration>,
    ttft_ticks: Option<u64>,
    decode_wall: Duration,
    extra_transfer: TransferStats,
    extra_cache: CacheStats,
    preemptions: u32,
    recovered: bool,
    max_degrade: PressureLevel,
}

/// A request waiting out its admission-retry backoff — or, when
/// `not_before` is its arrival tick, a trace-replay request holding for
/// its recorded arrival time.
struct Waiting {
    req: ServeRequest,
    not_before: u64,
}

/// A checkpoint snapshot plus everything needed to resume decoding from
/// it on any shard: the scheduler-side session state the engine tracks
/// outside the `SelectiveSession` itself. Lives in the cross-shard
/// registry; replaced wholesale at the next checkpoint of the same id.
/// Deadline state is deliberately absent — recovery replay does not reap.
struct CheckpointEntry {
    suspended: SuspendedSession,
    next: u32,
    remaining: usize,
    generated: Vec<u32>,
    trace: Vec<StepTrace>,
    retries: u32,
    priority: Priority,
    ttft_wall: Option<Duration>,
    ttft_ticks: Option<u64>,
    decode_wall: Duration,
    preemptions: u32,
    max_degrade: PressureLevel,
    /// Transfer accounted to the session up to the snapshot (live
    /// namespace + earlier preemption swaps). The snapshot's forked
    /// namespace meters from zero, so replay adds cleanly on top.
    base_transfer: TransferStats,
    /// Cache stats accounted up to the snapshot.
    base_cache: CacheStats,
}

/// What the coordinator needs to account for a request that was on a shard
/// when its worker died: enough to emit a typed [`ServeError::ShardLost`]
/// completion when no checkpoint exists. One map per shard; a request
/// enters when the shard pops it from the queue and leaves when its
/// completion is published.
struct InflightInfo {
    priority: Priority,
    retries: u32,
    decode_steps: usize,
}

/// Index of the highest-priority entry; the earliest index wins ties, so a
/// uniform-priority pool keeps stable order. `None` when empty.
fn best_by_priority<T>(items: &[T], priority: impl Fn(&T) -> Priority) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, item) in items.iter().enumerate() {
        let better = match best {
            None => true,
            Some(b) => priority(item) > priority(&items[b]),
        };
        if better {
            best = Some(i);
        }
    }
    best
}

/// Index of the strongest matured retry (earliest index wins ties).
fn best_matured(waiting: &[Waiting], now: u64) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, w) in waiting.iter().enumerate() {
        if w.not_before > now {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => w.req.priority > waiting[b].req.priority,
        };
        if better {
            best = Some(i);
        }
    }
    best
}

/// The preemption victim for an arrival of class `qp`: the weakest
/// strictly-lower-priority running session. Among equals the most recently
/// admitted loses (older sessions keep their progress), then the highest
/// id — a total, deterministic order.
fn victim_index(active: &[Active<'_>], qp: Priority) -> Option<usize> {
    active
        .iter()
        .enumerate()
        .filter(|(_, a)| a.priority < qp && a.remaining > 0)
        .min_by_key(|(_, a)| (a.priority, Reverse(a.admitted_tick), Reverse(a.id)))
        .map(|(i, _)| i)
}

/// Where [`ServeEngine::try_admit`] lands a request: straight into decode
/// (monolithic or prefix-adopted prefill) or into the chunked-prefill set.
enum Admit<'m> {
    Active(Box<Active<'m>>),
    Prefilling(Box<Prefilling<'m>>),
}

/// The sharded multi-session serving engine. Stateless: each [`Self::run`]
/// call owns its workers, tier, and budget for the duration of the batch.
pub struct ServeEngine;

impl ServeEngine {
    /// Serve `requests` to completion and return the report.
    ///
    /// Blocks until every admitted request has finished. Request→shard
    /// assignment is first-free-worker (work conserving), which is safe
    /// because results are scheduling-independent.
    ///
    /// `Err` only on a rejected configuration; every per-request fault
    /// (panic, page exhaustion, deadline, shed) is reported as a failed
    /// [`Completion`] inside an `Ok` report instead.
    pub fn run(
        model: &Model,
        cfg: &ServeConfig,
        requests: Vec<ServeRequest>,
    ) -> Result<ServeReport, ServeError> {
        cfg.validate()?;
        let plan = cfg.faults.clone().unwrap_or_default();
        let mcfg = model.config();
        let tier = KvTier::with_page_limit(
            mcfg.n_layers,
            mcfg.n_kv_heads,
            mcfg.head_dim,
            cfg.page_tokens,
            None,
            plan.page_limit,
        );
        let budget_sessions = cfg.cache_budget_sessions.unwrap_or_else(|| cfg.peak_sessions());
        let budget = CacheBudget::for_tokens(
            cfg.session.cache.capacity_tokens * budget_sessions,
            cfg.session.cache.block_size,
        );
        // FirstFree: one shared queue. RoundRobin: one queue per shard,
        // splitting the global bound exactly (first `remainder` shards get
        // the extra slot, so per-shard capacities sum to queue_capacity).
        let queues: Vec<BoundedQueue<ServeRequest>> = match cfg.assignment {
            ShardAssignment::FirstFree => vec![BoundedQueue::new(cfg.queue_capacity)],
            ShardAssignment::RoundRobin => (0..cfg.shards)
                .map(|i| {
                    let base = cfg.queue_capacity / cfg.shards;
                    BoundedQueue::new(base + usize::from(i < cfg.queue_capacity % cfg.shards))
                })
                .collect(),
        };
        let start = Instant::now();

        // Crash-recovery state shared across shards: workers publish
        // finished completions incrementally (so a dying worker loses
        // nothing already done), checkpoints live in a cross-shard
        // registry, and each shard tracks what it has in flight so the
        // coordinator can account every request of a dead shard.
        let completions_shared: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
        let registry: Mutex<HashMap<u64, CheckpointEntry>> = Mutex::new(HashMap::new());
        let inflight: Vec<Mutex<HashMap<u64, InflightInfo>>> =
            (0..cfg.shards).map(|_| Mutex::new(HashMap::new())).collect();

        let (mut completions, shard_stats, worker_panics) = std::thread::scope(|scope| {
            let plan = &plan;
            let completions_shared = &completions_shared;
            let registry = &registry;
            let inflight = &inflight;
            let handles: Vec<_> = (0..cfg.shards)
                .map(|shard| {
                    let queue = &queues[shard % queues.len()];
                    let tier = tier.clone();
                    let budget = budget.clone();
                    scope.spawn(move || {
                        Self::worker(
                            model,
                            cfg,
                            plan,
                            shard,
                            queue,
                            tier,
                            budget,
                            start,
                            completions_shared,
                            registry,
                            &inflight[shard],
                        )
                    })
                })
                .collect();

            // The caller's thread is the producer: bounded pushes are the
            // admission back-pressure. A push only bounces when a dying
            // worker closed its queue first — shed the request as a shard
            // loss instead of aborting the run.
            let mut completions = Vec::new();
            for (i, req) in requests.into_iter().enumerate() {
                if let Err(req) = queues[i % queues.len()].push(req) {
                    let shard = i % cfg.shards;
                    completions.push(Self::shed(
                        &req,
                        shard,
                        ServeError::ShardLost { shard },
                        !plan.worker_kills.is_empty(),
                        0,
                    ));
                }
            }
            for q in &queues {
                q.close();
            }

            let mut shard_stats = Vec::with_capacity(cfg.shards);
            let mut worker_panics = 0u64;
            let mut dead: Vec<usize> = Vec::new();
            for (shard, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(stats) => shard_stats.push(stats),
                    Err(_) => {
                        // A worker died outside the per-session isolation.
                        // Absorb it: the other shards' completions and the
                        // report still come back, and the dead shard's
                        // in-flight sessions fail over below.
                        worker_panics += 1;
                        dead.push(shard);
                        shard_stats.push(ShardStats::default());
                    }
                }
            }
            completions.append(&mut lock(completions_shared));
            if !dead.is_empty() {
                Self::recover_dead_shards(
                    model,
                    cfg,
                    &budget,
                    registry,
                    inflight,
                    &dead,
                    &queues,
                    &mut shard_stats,
                    &mut completions,
                );
            }
            (completions, shard_stats, worker_panics)
        });

        completions.sort_by_key(|c| c.id);
        let (mut ttft_wall, mut ttft_ticks, mut tpot_wall) = (Vec::new(), Vec::new(), Vec::new());
        let mut by_class: [(Vec<f64>, Vec<f64>, Vec<f64>); Priority::COUNT] = Default::default();
        for c in &completions {
            let class = &mut by_class[c.priority.index()];
            if let Some(d) = c.ttft_wall {
                ttft_wall.push(d.as_secs_f64());
                class.0.push(d.as_secs_f64());
            }
            if let Some(t) = c.ttft_ticks {
                ttft_ticks.push(t as f64);
                class.1.push(t as f64);
            }
            if let Some(d) = c.tpot_wall {
                tpot_wall.push(d.as_secs_f64());
                class.2.push(d.as_secs_f64());
            }
        }
        let mut overload = OverloadSummary::default();
        for s in &shard_stats {
            for (acc, ticks) in overload.level_ticks.iter_mut().zip(s.level_ticks) {
                *acc += ticks;
            }
            overload.degraded_tokens += s.degraded_tokens;
            overload.deferrals += s.deferrals;
            overload.sheds += s.overload_sheds;
        }
        Ok(ServeReport {
            latency: LatencySummary::new(&ttft_wall, &ttft_ticks, &tpot_wall),
            latency_by_priority: by_class
                .map(|(tw, tt, tp)| LatencySummary::new(&tw, &tt, &tp)),
            overload,
            completions,
            aggregate_transfer: tier.aggregate_stats(),
            prefix: tier.prefix_stats(),
            aggregate_sharing: tier.aggregate_sharing(),
            peak_host_bytes: tier.allocator().peak_resident_bytes(),
            // Sum of per-queue high waters: an upper bound on peak global
            // occupancy, itself bounded by the configured capacity.
            queue_high_water: queues.iter().map(BoundedQueue::high_water).sum(),
            shards: shard_stats,
            budget_underflow: budget.underflow_detected(),
            worker_panics,
            wall: start.elapsed(),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn worker<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        plan: &FaultPlan,
        shard: usize,
        queue: &BoundedQueue<ServeRequest>,
        tier: KvTier,
        budget: CacheBudget,
        epoch: Instant,
        completions_shared: &Mutex<Vec<Completion>>,
        registry: &Mutex<HashMap<u64, CheckpointEntry>>,
        inflight: &Mutex<HashMap<u64, InflightInfo>>,
    ) -> ShardStats {
        let mut scratch = SessionScratch::new();
        let mut active: Vec<Active<'m>> = Vec::new();
        let mut prefilling: Vec<Prefilling<'m>> = Vec::new();
        let mut parked: Vec<Parked> = Vec::new();
        let mut completions = Vec::new();
        let mut stats = ShardStats::default();
        // Injected-admission-reject bookkeeping: rejections consumed per
        // request, and requests waiting out their retry backoff.
        let mut rejected: HashMap<u64, u32> = HashMap::new();
        let mut waiting: Vec<Waiting> = Vec::new();
        let mut stall_remaining: u64 = 0;
        // Bit flips already injected: a rollback replays the trigger step,
        // and the fault must not re-fire or recovery could never converge.
        let mut fired_flips: HashSet<(u64, u64)> = HashSet::new();
        // Brownout controller: per-shard, fed one pressure sample per tick.
        // `None` leaves every decision path untouched — bit-identical to
        // the pre-brownout engine. Controller sheds keep their own retry
        // ledger, disjoint from the fault plan's `rejected` map, so an
        // injected-rejection schedule replays unperturbed; `obs_watermark`
        // marks how much of the local completions buffer the controller
        // has already sampled (publish drains the buffer, resetting it).
        let mut ctrl = cfg.overload.as_ref().map(|c| OverloadController::new(c.clone()));
        let mut ctrl_rejected: HashMap<u64, u32> = HashMap::new();
        let mut obs_watermark: usize = 0;

        loop {
            // Admission: fill free slots (occupied by decoding + prefilling
            // sessions; parked sessions hold pinned pages, not slots).
            // Order: resume preempted work, then matured retries, then the
            // queue — highest priority first, FIFO within a class. Block
            // only when fully idle; a shard with live sessions or pending
            // retries keeps ticking while the queue is empty.
            let mut drained = false;
            while active.len() + prefilling.len() < cfg.max_active_per_shard {
                if let Some(pi) = best_by_priority(&parked, |p: &Parked| p.priority) {
                    // A queued request strictly outranking every parked
                    // session is admitted first; otherwise resume.
                    let outranked = queue
                        .max_key(|r| r.priority)
                        .is_some_and(|qp| qp > parked[pi].priority);
                    if !outranked {
                        let p = parked.swap_remove(pi);
                        let t0 = Instant::now();
                        active.push(Self::reactivate(model, cfg, p, &budget));
                        stats.busy += t0.elapsed();
                        continue;
                    }
                }
                let req = if let Some(i) = best_matured(&waiting, stats.ticks) {
                    waiting.swap_remove(i).req
                } else if active.is_empty()
                    && prefilling.is_empty()
                    && parked.is_empty()
                    && waiting.is_empty()
                {
                    match queue.pop_wait_max_by_key(|r| r.priority) {
                        Some(r) => r,
                        None => {
                            drained = true;
                            break;
                        }
                    }
                } else {
                    match queue.try_pop_max_by_key(|r| r.priority) {
                        Some(r) => r,
                        None => break,
                    }
                };
                lock(inflight).insert(
                    req.id,
                    InflightInfo {
                        priority: req.priority,
                        retries: rejected.get(&req.id).copied().unwrap_or(0)
                            + ctrl_rejected.get(&req.id).copied().unwrap_or(0),
                        decode_steps: req.decode_steps,
                    },
                );
                if req.arrival_tick > stats.ticks {
                    // Time-accurate replay: hold the request — consuming no
                    // retry — until this shard's clock reaches its recorded
                    // arrival (the idle-tick path below matures the clock).
                    waiting.push(Waiting { not_before: req.arrival_tick, req });
                    continue;
                }

                let Some(req) = Self::screen(
                    req,
                    plan,
                    &mut rejected,
                    &mut waiting,
                    &mut completions,
                    &mut stats,
                    shard,
                ) else {
                    continue;
                };
                let prior = rejected.get(&req.id).copied().unwrap_or(0);
                let Some(req) = Self::brownout_gate(
                    ctrl.as_ref(),
                    req,
                    prior,
                    &mut ctrl_rejected,
                    &mut waiting,
                    &mut completions,
                    &mut stats,
                    shard,
                ) else {
                    continue;
                };
                let retries = prior + ctrl_rejected.get(&req.id).copied().unwrap_or(0);
                let t0 = Instant::now();
                Self::admit_into(
                    model,
                    cfg,
                    plan,
                    req,
                    &tier,
                    &budget,
                    epoch,
                    shard,
                    retries,
                    &mut active,
                    &mut prefilling,
                    &mut completions,
                    &mut stats,
                );
                stats.busy += t0.elapsed();
            }
            if drained
                && active.is_empty()
                && prefilling.is_empty()
                && parked.is_empty()
                && waiting.is_empty()
            {
                Self::publish(&mut completions, completions_shared, registry, inflight);
                return stats;
            }
            Self::retire(&mut active, &mut completions, shard);

            // Preemption: slots full and a pending request (queued, or a
            // matured retry) strictly outranking a running session claims
            // its slot. The weakest victim is suspended through the paged
            // host tier — bit-identical on resume — and the request admits
            // into the freed slot. Loops while candidates remain.
            while active.len() + prefilling.len() >= cfg.max_active_per_shard {
                let queued = queue.max_key(|r| r.priority);
                let waited = best_matured(&waiting, stats.ticks).map(|i| waiting[i].req.priority);
                let Some(qp) = queued.max(waited) else { break };
                let Some(vi) = victim_index(&active, qp) else { break };
                // Prefer the matured retry when it's at least as strong (it
                // arrived first); otherwise pop the queue.
                let take_waiting = waited >= queued && waited.is_some();
                let req = if take_waiting {
                    let wi = best_matured(&waiting, stats.ticks).expect("matured retry observed");
                    waiting.swap_remove(wi).req
                } else {
                    match queue.try_pop_max_by_key(|r| r.priority) {
                        Some(r) => r,
                        None => break,
                    }
                };
                lock(inflight).insert(
                    req.id,
                    InflightInfo {
                        priority: req.priority,
                        retries: rejected.get(&req.id).copied().unwrap_or(0)
                            + ctrl_rejected.get(&req.id).copied().unwrap_or(0),
                        decode_steps: req.decode_steps,
                    },
                );
                if req.arrival_tick > stats.ticks {
                    // Not due yet: hold it without parking a victim.
                    waiting.push(Waiting { not_before: req.arrival_tick, req });
                    break;
                }
                let Some(req) = Self::screen(
                    req,
                    plan,
                    &mut rejected,
                    &mut waiting,
                    &mut completions,
                    &mut stats,
                    shard,
                ) else {
                    continue;
                };
                if req.priority <= active[vi].priority {
                    // Raced: another shard took the stronger request between
                    // the scan and the pop. Hold this one for admission.
                    waiting.push(Waiting { req, not_before: stats.ticks });
                    break;
                }
                let t0 = Instant::now();
                match Self::park(active.swap_remove(vi), &tier) {
                    Ok(p) => {
                        parked.push(p);
                        stats.preemptions += 1;
                        let retries = rejected.get(&req.id).copied().unwrap_or(0)
                            + ctrl_rejected.get(&req.id).copied().unwrap_or(0);
                        Self::admit_into(
                            model,
                            cfg,
                            plan,
                            req,
                            &tier,
                            &budget,
                            epoch,
                            shard,
                            retries,
                            &mut active,
                            &mut prefilling,
                            &mut completions,
                            &mut stats,
                        );
                        stats.busy += t0.elapsed();
                    }
                    Err(victim) => {
                        // The host pool can't take the swap right now: the
                        // victim came back intact — keep decoding it, retry
                        // the request next tick.
                        active.push(*victim);
                        waiting.push(Waiting { req, not_before: stats.ticks + 1 });
                        stats.busy += t0.elapsed();
                        break;
                    }
                }
            }
            if active.is_empty() && prefilling.is_empty() {
                if waiting.is_empty() && parked.is_empty() {
                    continue;
                }
                // Nothing to decode but retries or parked work pending:
                // ticks are the engine's clock, so burn one to let backoff
                // elapse (parked work resumes via admission next pass). The
                // controller observes idle ticks too — liveness: deferred
                // work only re-admits once decayed pressure steps the
                // ladder down, which needs the clock *and* the controller
                // to keep running.
                stats.ticks += 1;
                if let Some(ctrl) = ctrl.as_mut() {
                    Self::observe_pressure(
                        ctrl,
                        cfg,
                        queue,
                        &tier,
                        0,
                        &completions,
                        &mut obs_watermark,
                        &mut stats,
                    );
                }
                continue;
            }

            // One scheduler tick: at most one budgeted prefill chunk, then
            // each ready session decodes one token through the shard's
            // shared scratch.
            let tick = stats.ticks;
            stats.ticks += 1;
            // Observe before publish: the pressure sample's rolling rates
            // come from completions still in the local buffer.
            if let Some(ctrl) = ctrl.as_mut() {
                Self::observe_pressure(
                    ctrl,
                    cfg,
                    queue,
                    &tier,
                    active.len() + prefilling.len(),
                    &completions,
                    &mut obs_watermark,
                    &mut stats,
                );
            }
            // Publish finished completions at every tick boundary: if this
            // worker dies, everything already done has left the thread.
            Self::publish(&mut completions, completions_shared, registry, inflight);
            obs_watermark = 0;
            if plan.kill_at(shard, tick) {
                // A dying worker that exclusively owns its queue closes it
                // first: a blocked producer push bounces (shed as a shard
                // loss) instead of deadlocking, and stranded items stay
                // drainable after the close. The first-free shared queue
                // stays open for the surviving workers.
                if cfg.assignment == ShardAssignment::RoundRobin || cfg.shards == 1 {
                    queue.close();
                }
                // resume_unwind skips the panic hook: an injected crash
                // must not spray a backtrace over every chaos run.
                std::panic::resume_unwind(Box::new(format!(
                    "injected worker kill: shard {shard} at tick {tick}"
                )));
            }
            if stall_remaining == 0 {
                if let Some(t) = plan.stall_ticks(shard, tick) {
                    stall_remaining = t;
                }
            }
            // Deadlines are checked every tick — including stalled ones: a
            // stalled shard is exactly how deadlines get blown. Mid-prefill
            // and parked sessions are reaped too.
            let now = epoch.elapsed();
            Self::reap_deadlines(&mut active, &mut completions, shard, tick, now, &mut stats);
            Self::reap_prefilling(&mut prefilling, &mut completions, shard, tick, now, &mut stats);
            Self::reap_parked(&mut parked, &mut completions, shard, tick, now, &mut stats);
            if stall_remaining > 0 {
                // Injected slow shard: hold the sessions, skip the work.
                stall_remaining -= 1;
                stats.stalled_steps += (active.len() + prefilling.len()) as u64;
                continue;
            }
            // Checkpoint pass: snapshot every resident session through the
            // paged tier without evicting it. Best effort per session — a
            // pending store fault or unforkable policy mid-state skips this
            // round (`Ok(None)`), pool exhaustion keeps the previous
            // snapshot — and each snapshot is checksum-verified before it
            // replaces the registry entry, so the registry only ever holds
            // provably good state to roll back or fail over to.
            if let Some(k) = cfg.checkpoint_every_ticks {
                // Under pressure the cadence stretches: snapshots are pure
                // overhead on a saturated shard, and a sparser checkpoint
                // trail only widens the replay window, never correctness.
                let k = ctrl.as_ref().map_or(k, |c| c.checkpoint_every(k));
                if tick % k == 0 && !active.is_empty() {
                    let t0 = Instant::now();
                    for a in active.iter() {
                        if let Ok(Some(suspended)) = a.session.checkpoint(&tier) {
                            if suspended.verify().is_ok() {
                                stats.checkpoints += 1;
                                stats.checkpoint_bytes += suspended.swap_stats().d2h_bytes;
                                lock(registry).insert(
                                    a.id,
                                    CheckpointEntry {
                                        suspended,
                                        next: a.next,
                                        remaining: a.remaining,
                                        generated: a.generated.clone(),
                                        trace: a.trace.clone(),
                                        retries: a.retries,
                                        priority: a.priority,
                                        ttft_wall: a.ttft_wall,
                                        ttft_ticks: a.ttft_ticks,
                                        decode_wall: a.decode_wall,
                                        preemptions: a.preemptions,
                                        max_degrade: a.max_degrade,
                                        base_transfer: a.session.transfer_stats()
                                            + a.extra_transfer,
                                        base_cache: a.session.cache_stats() + a.extra_cache,
                                    },
                                );
                            }
                        }
                    }
                    stats.busy += t0.elapsed();
                }
            }
            // Chunked prefill: the highest-priority prefill advances one
            // budgeted chunk per tick, interleaved with the decode loop
            // below — a long prompt trickles in without freezing decode.
            if let Some(chunk) = cfg.prefill_chunk_tokens {
                if let Some(pi) = best_by_priority(&prefilling, |p: &Prefilling<'_>| p.priority) {
                    let t0 = Instant::now();
                    prefilling[pi].job.advance(chunk);
                    stats.prefill_chunks += 1;
                    if prefilling[pi].job.is_done() {
                        let p = prefilling.swap_remove(pi);
                        match Self::finish_prefill(
                            model, cfg, p, &tier, &budget, tick, epoch, plan, shard,
                        ) {
                            Ok(a) => active.push(*a),
                            Err((c, lost)) => {
                                stats.failed += 1;
                                stats.shed_tokens += lost;
                                completions.push(*c);
                            }
                        }
                    }
                    stats.busy += t0.elapsed();
                }
            }
            let t0 = Instant::now();
            let mut i = 0;
            while i < active.len() {
                let a = &mut active[i];
                // Brownout effort is re-applied every step: the level can
                // move every tick, and a policy fork/resume resets effort
                // to full. A full-effort application is an exact
                // passthrough, so High-priority (and Nominal) sessions
                // decode bit-identically to the controller-off engine.
                if let Some(ctrl) = ctrl.as_ref() {
                    a.session.set_effort(ctrl.effort_for(a.priority));
                }
                let token = a.next;
                let inject = plan.panic_step(a.id).filter(|&s| s == a.session.steps());
                if let Some(bit) = plan.bit_flip_at(a.id, a.session.steps()) {
                    // Silent store corruption: flip a bit behind the
                    // checksum's back. Detection happens on the next fetch
                    // of the damaged slot — possibly steps later if intact
                    // GPU copies mask it — never at injection.
                    if fired_flips.insert((a.id, a.session.steps())) {
                        a.session.corrupt_middle_slot(0, 0, bit);
                    }
                }
                let s0 = Instant::now();
                // The outer catch only ever sees the injected panic: it
                // fires before the step, so the shared scratch is never
                // mid-swap. Genuine step panics are contained (and scratch
                // restored) inside `try_step_with_scratch` itself.
                let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(at_step) = inject {
                        std::panic::panic_any(InjectedPanic { request_id: a.id, at_step });
                    }
                    a.session.try_step_with_scratch(token, &mut scratch)
                }));
                a.decode_wall += s0.elapsed();
                let (error, injected) = match stepped {
                    Ok(Ok(dec)) => {
                        if let Some(ctrl) = ctrl.as_ref() {
                            let level = ctrl.level();
                            if level != PressureLevel::Nominal {
                                stats.degraded_steps += 1;
                            }
                            if !ctrl.effort_for(a.priority).is_full() {
                                stats.degraded_tokens += 1;
                                a.max_degrade = a.max_degrade.max(level);
                            }
                        }
                        a.generated.push(token);
                        if cfg.record_trace {
                            a.trace.push(StepTrace {
                                logits: dec.logits.clone(),
                                selected: a.session.selected_snapshot(),
                            });
                        }
                        a.next = dec.greedy();
                        a.remaining -= 1;
                        i += 1;
                        continue;
                    }
                    Ok(Err(StepError::Store(e))) => {
                        if matches!(e, MemError::PageCorrupt { .. }) {
                            // A page failed its checksum: the corrupt bytes
                            // were never served (the fetch failed the step).
                            // Roll back to the last good checkpoint and
                            // replay in place; only a session with no
                            // snapshot surfaces KvCorruption.
                            if let Some(entry) = lock(registry).remove(&a.id) {
                                let CheckpointEntry {
                                    suspended,
                                    next,
                                    remaining,
                                    generated,
                                    trace,
                                    base_transfer,
                                    base_cache,
                                    ..
                                } = entry;
                                if suspended.verify().is_ok() {
                                    let (session, swap_transfer) =
                                        suspended.resume(model, Self::fresh_cache(cfg, &budget));
                                    a.session = session;
                                    a.next = next;
                                    a.remaining = remaining;
                                    a.generated = generated;
                                    a.trace = trace;
                                    a.extra_transfer = base_transfer + swap_transfer;
                                    a.extra_cache = base_cache;
                                    a.recovered = true;
                                    stats.rollbacks += 1;
                                    i += 1;
                                    continue;
                                }
                            }
                        }
                        let injected = (plan.page_limit.is_some()
                            && matches!(e, MemError::PageExhausted { .. }))
                            || (!plan.bit_flips.is_empty()
                                && matches!(e, MemError::PageCorrupt { .. }));
                        (e.into(), injected)
                    }
                    Ok(Err(StepError::Poisoned { message })) => {
                        (ServeError::SessionPoisoned { message }, false)
                    }
                    Err(payload) => match payload.downcast::<InjectedPanic>() {
                        Ok(inj) => (inj.to_error(), true),
                        Err(other) => (
                            ServeError::SessionPoisoned { message: panic_message(other.as_ref()) },
                            false,
                        ),
                    },
                };
                let failed = active.swap_remove(i);
                stats.failed += 1;
                stats.shed_tokens += failed.remaining as u64;
                completions.push(Self::fail(failed, shard, error, injected));
            }
            stats.busy += t0.elapsed();
            Self::retire(&mut active, &mut completions, shard);
        }
    }

    /// Publish a worker's locally buffered completions to the shared vec.
    /// A published id leaves the in-flight map and drops its checkpoint —
    /// it can no longer need recovery — so at any kill boundary the
    /// in-flight map is exactly the set of incomplete requests.
    fn publish(
        local: &mut Vec<Completion>,
        shared: &Mutex<Vec<Completion>>,
        registry: &Mutex<HashMap<u64, CheckpointEntry>>,
        inflight: &Mutex<HashMap<u64, InflightInfo>>,
    ) {
        if local.is_empty() {
            return;
        }
        {
            let mut reg = lock(registry);
            let mut inf = lock(inflight);
            for c in local.iter() {
                reg.remove(&c.id);
                inf.remove(&c.id);
            }
        }
        lock(shared).append(local);
    }

    /// Feed the brownout controller one tick's pressure sample and meter
    /// the resulting level. The sample sees only *admitted* load — queue
    /// depth, resident slots, page-pool occupancy, and completion-derived
    /// rolling miss/TTFT rates — never deferred (`waiting`) work, so
    /// pressure decays once admissions stop and the ladder steps back
    /// down, re-admitting what was deferred.
    #[allow(clippy::too_many_arguments)]
    fn observe_pressure(
        ctrl: &mut OverloadController,
        cfg: &ServeConfig,
        queue: &BoundedQueue<ServeRequest>,
        tier: &KvTier,
        resident: usize,
        completions: &[Completion],
        watermark: &mut usize,
        stats: &mut ShardStats,
    ) {
        let slo = ctrl.config().ttft_slo_ticks;
        let (mut done, mut missed, mut ttft_over) = (0u32, 0u32, 0u32);
        for c in &completions[*watermark..] {
            done += 1;
            if matches!(
                &c.failure,
                Some(FailureCause { error: ServeError::DeadlineExceeded { .. }, .. })
            ) {
                missed += 1;
            }
            if c.ttft_ticks.is_some_and(|t| t > slo) {
                ttft_over += 1;
            }
        }
        *watermark = completions.len();
        let alloc = tier.allocator();
        let pool_frac = match alloc.max_pages() {
            Some(max) if max > 0 => alloc.pages_in_use() as f64 / max as f64,
            _ => 0.0,
        };
        let sample = PressureSample {
            queue_frac: queue.len() as f64 / queue.capacity().max(1) as f64,
            slot_frac: resident as f64 / cfg.max_active_per_shard.max(1) as f64,
            pool_frac,
            done,
            missed,
            ttft_over,
        };
        let level = ctrl.observe(&sample);
        stats.level_ticks[level.index()] += 1;
    }

    /// Brownout admission control, applied *after* injected screening so a
    /// fault plan's rejection schedule plays out identically with the
    /// controller on. Only Low-priority requests are gated: at `Saturated`
    /// the request is **deferred** — pushed back with a bounded seeded
    /// delay, consuming no retry — and at `Critical` it takes today's shed
    /// path (seeded backoff retries, then a typed admission shed). Returns
    /// the request when it's clear to admit.
    #[allow(clippy::too_many_arguments)]
    fn brownout_gate(
        ctrl: Option<&OverloadController>,
        req: ServeRequest,
        prior_retries: u32,
        ctrl_rejected: &mut HashMap<u64, u32>,
        waiting: &mut Vec<Waiting>,
        completions: &mut Vec<Completion>,
        stats: &mut ShardStats,
        shard: usize,
    ) -> Option<ServeRequest> {
        let Some(ctrl) = ctrl else { return Some(req) };
        if req.priority != Priority::Low {
            return Some(req);
        }
        if ctrl.sheds_low_admission() {
            let consumed = ctrl_rejected.entry(req.id).or_insert(0);
            *consumed += 1;
            let attempts = *consumed;
            if attempts > req.retry.max_retries {
                stats.failed += 1;
                stats.overload_sheds += 1;
                stats.shed_tokens += req.decode_steps as u64;
                completions.push(Self::shed(
                    &req,
                    shard,
                    ServeError::Admission { attempts },
                    false,
                    prior_retries + attempts.saturating_sub(1),
                ));
                return None;
            }
            stats.retries += 1;
            let backoff = req.retry.backoff(ctrl.seed() ^ req.id, attempts);
            waiting.push(Waiting { not_before: stats.ticks + backoff, req });
            return None;
        }
        if ctrl.defers_low_admission() {
            stats.deferrals += 1;
            let delay = ctrl.defer_delay(req.id, stats.ticks);
            waiting.push(Waiting { not_before: stats.ticks + delay, req });
            return None;
        }
        Some(req)
    }

    /// Injected admission screening: consume a planned rejection (retrying
    /// with backoff, or shedding once retries are exhausted). Returns the
    /// request when it's clear to admit. Both the admission loop and the
    /// preemption path screen through here, so a request's rejection
    /// schedule plays out identically whichever path first pops it.
    #[allow(clippy::too_many_arguments)]
    fn screen(
        req: ServeRequest,
        plan: &FaultPlan,
        rejected: &mut HashMap<u64, u32>,
        waiting: &mut Vec<Waiting>,
        completions: &mut Vec<Completion>,
        stats: &mut ShardStats,
        shard: usize,
    ) -> Option<ServeRequest> {
        let planned = plan.rejections(req.id);
        if planned > 0 {
            let consumed = rejected.entry(req.id).or_insert(0);
            if *consumed < planned {
                *consumed += 1;
                let attempts = *consumed;
                if attempts > req.retry.max_retries {
                    stats.failed += 1;
                    stats.shed_tokens += req.decode_steps as u64;
                    completions.push(Self::shed(
                        &req,
                        shard,
                        ServeError::Admission { attempts },
                        true,
                        attempts.saturating_sub(1),
                    ));
                    return None;
                }
                stats.retries += 1;
                let backoff = req.retry.backoff(plan.seed ^ req.id, attempts);
                waiting.push(Waiting { req, not_before: stats.ticks + backoff });
                return None;
            }
        }
        Some(req)
    }

    /// Admit a screened request into a free slot, routing the admission
    /// outcome (active session, chunked prefill, or a shed completion when
    /// the host tier can't hold the prompt) into the worker's state.
    #[allow(clippy::too_many_arguments)]
    fn admit_into<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        plan: &FaultPlan,
        req: ServeRequest,
        tier: &KvTier,
        budget: &CacheBudget,
        epoch: Instant,
        shard: usize,
        retries: u32,
        active: &mut Vec<Active<'m>>,
        prefilling: &mut Vec<Prefilling<'m>>,
        completions: &mut Vec<Completion>,
        stats: &mut ShardStats,
    ) {
        let (id, decode_steps, priority) = (req.id, req.decode_steps, req.priority);
        match Self::try_admit(model, cfg, req, tier, budget, stats.ticks, retries, epoch) {
            Ok(Admit::Active(a)) => {
                active.push(*a);
                stats.admitted += 1;
            }
            Ok(Admit::Prefilling(p)) => {
                prefilling.push(*p);
                stats.admitted += 1;
            }
            Err(e) => {
                // Prefill offload exhausted the page pool: shed this
                // session, keep serving everyone else.
                let injected =
                    plan.page_limit.is_some() && matches!(e, MemError::PageExhausted { .. });
                stats.failed += 1;
                stats.shed_tokens += decode_steps as u64;
                completions.push(Completion {
                    id,
                    shard,
                    generated: Vec::new(),
                    transfer: TransferStats::default(),
                    cache: CacheStats::default(),
                    sharing: SharingStats::default(),
                    trace: Vec::new(),
                    failure: Some(FailureCause { error: e.into(), injected, step: 0 }),
                    retries,
                    priority,
                    ttft_wall: None,
                    ttft_ticks: None,
                    tpot_wall: None,
                    preemptions: 0,
                    recovered: false,
                    max_degrade_level: PressureLevel::Nominal,
                });
            }
        }
    }

    /// A fresh cache drawing on the engine-wide budget.
    fn fresh_cache(cfg: &ServeConfig, budget: &CacheBudget) -> BlockCache {
        BlockCache::with_budget(
            cfg.session.cache.capacity_tokens,
            cfg.session.cache.block_size,
            cfg.session.cache.policy(),
            budget.clone(),
        )
    }

    /// Admit a request: bind a session to a fresh tier namespace and a
    /// budget-backed cache, prefilling (or adopting a shared prefix). Under
    /// chunked admission the prompt enters a [`Prefilling`] slot instead —
    /// its prefill runs one budgeted chunk per tick. `Err` when the host
    /// tier cannot hold the prompt — the caller sheds the request; it never
    /// aborts the worker.
    #[allow(clippy::too_many_arguments)]
    fn try_admit<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        req: ServeRequest,
        tier: &KvTier,
        budget: &CacheBudget,
        admitted_tick: u64,
        retries: u32,
        epoch: Instant,
    ) -> Result<Admit<'m>, MemError> {
        let cache = || Self::fresh_cache(cfg, budget);
        let activate = |start: pqc_core::SessionStart<'m>| {
            Box::new(Active {
                id: req.id,
                next: pqc_tensor::argmax(&start.logits) as u32,
                session: start.session,
                remaining: req.decode_steps,
                generated: Vec::with_capacity(req.decode_steps),
                trace: Vec::new(),
                admitted_tick,
                deadline: req.deadline,
                admitted_wall: epoch.elapsed(),
                wall_deadline: req.wall_deadline,
                retries,
                priority: req.priority,
                // First token known now (prefill/adoption is one admission
                // event): 0 ticks on the deterministic clock.
                ttft_wall: Some(epoch.elapsed()),
                ttft_ticks: Some(0),
                decode_wall: Duration::ZERO,
                extra_transfer: TransferStats::default(),
                extra_cache: CacheStats::default(),
                preemptions: 0,
                recovered: false,
                max_degrade: PressureLevel::Nominal,
            })
        };

        // Prefix-cache fast path: an identical prompt already served means
        // the pages, prefill output, and trained policy state are all in
        // the tier — adopt them instead of recomputing. Only a full-prompt
        // hit qualifies; a partial hit would still need a partial prefill,
        // which the dense model here cannot resume mid-prompt.
        if cfg.prefix_cache {
            if let Some(hit) = tier.lookup_prefix(&req.tokens) {
                if hit.len() == req.tokens.len() {
                    if let Some(shared) = hit.payload().downcast_ref::<SharedPrefix>() {
                        let resources = SessionResources {
                            store: tier.new_namespace_with_prefix(&hit),
                            cache: cache(),
                        };
                        let start = SelectiveSession::try_start_from_shared_prefix(
                            model,
                            req.policy,
                            cfg.session,
                            &shared.prefill,
                            resources,
                            shared.policy.as_ref(),
                        )?;
                        return Ok(Admit::Active(activate(start)));
                    }
                }
            }
        }

        // Chunked admission: start the prefill job but run none of it yet —
        // the tick loop advances it one budgeted chunk at a time so decode
        // on this shard never stalls behind a long prompt.
        if cfg.prefill_chunk_tokens.is_some() {
            let mut opts = SelectiveSession::prefill_options(&cfg.session, req.tokens.len());
            opts.parallel = cfg.prefill_parallel;
            let job = model.begin_prefill(&req.tokens, &opts);
            return Ok(Admit::Prefilling(Box::new(Prefilling {
                id: req.id,
                job,
                tokens: req.tokens,
                policy: req.policy,
                decode_steps: req.decode_steps,
                admitted_tick,
                deadline: req.deadline,
                admitted_wall: epoch.elapsed(),
                wall_deadline: req.wall_deadline,
                retries,
                priority: req.priority,
            })));
        }

        let mut opts = SelectiveSession::prefill_options(&cfg.session, req.tokens.len());
        opts.parallel = cfg.prefill_parallel;
        let prefill = model.prefill(&req.tokens, &opts);
        let resources = SessionResources { store: tier.new_namespace(), cache: cache() };
        let start = SelectiveSession::try_start_from_prefill_in(
            model,
            req.policy,
            cfg.session,
            &prefill,
            resources,
        )?;
        if cfg.prefix_cache {
            // First server of this prompt donates its pages + policy state.
            // Racing registrants are benign: first wins, the loser just
            // keeps its private copy.
            let payload =
                Arc::new(SharedPrefix { policy: start.session.export_policy_state(), prefill });
            let _ = tier.register_prefix(&req.tokens, start.session.store(), payload);
        }
        Ok(Admit::Active(activate(start)))
    }

    /// Bind a completed chunked prefill to a live session — registering the
    /// prompt as a shared prefix exactly like monolithic admission does.
    /// The first token becomes known here: TTFT is stamped on both clocks.
    #[allow(clippy::too_many_arguments)]
    fn finish_prefill<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        p: Prefilling<'m>,
        tier: &KvTier,
        budget: &CacheBudget,
        tick: u64,
        epoch: Instant,
        plan: &FaultPlan,
        shard: usize,
    ) -> Result<Box<Active<'m>>, (Box<Completion>, u64)> {
        let Prefilling {
            id,
            job,
            tokens,
            policy,
            decode_steps,
            admitted_tick,
            deadline,
            admitted_wall,
            wall_deadline,
            retries,
            priority,
        } = p;
        let prefill = job.finish();
        let resources =
            SessionResources { store: tier.new_namespace(), cache: Self::fresh_cache(cfg, budget) };
        match SelectiveSession::try_start_from_prefill_in(model, policy, cfg.session, &prefill, resources)
        {
            Ok(start) => {
                if cfg.prefix_cache {
                    let payload = Arc::new(SharedPrefix {
                        policy: start.session.export_policy_state(),
                        prefill,
                    });
                    let _ = tier.register_prefix(&tokens, start.session.store(), payload);
                }
                Ok(Box::new(Active {
                    id,
                    next: pqc_tensor::argmax(&start.logits) as u32,
                    session: start.session,
                    remaining: decode_steps,
                    generated: Vec::with_capacity(decode_steps),
                    trace: Vec::new(),
                    admitted_tick,
                    deadline,
                    admitted_wall,
                    wall_deadline,
                    retries,
                    priority,
                    ttft_wall: Some(epoch.elapsed()),
                    // The chunk completing on `tick` yielded the first
                    // token: inclusive tick count since admission.
                    ttft_ticks: Some(tick + 1 - admitted_tick),
                    decode_wall: Duration::ZERO,
                    extra_transfer: TransferStats::default(),
                    extra_cache: CacheStats::default(),
                    preemptions: 0,
                    recovered: false,
                    max_degrade: PressureLevel::Nominal,
                }))
            }
            Err(e) => {
                let injected =
                    plan.page_limit.is_some() && matches!(e, MemError::PageExhausted { .. });
                Err((
                    Box::new(Completion {
                        id,
                        shard,
                        generated: Vec::new(),
                        transfer: TransferStats::default(),
                        cache: CacheStats::default(),
                        sharing: SharingStats::default(),
                        trace: Vec::new(),
                        failure: Some(FailureCause { error: e.into(), injected, step: 0 }),
                        retries,
                        priority,
                        ttft_wall: None,
                        ttft_ticks: None,
                        tpot_wall: None,
                        preemptions: 0,
                        recovered: false,
                        max_degrade_level: PressureLevel::Nominal,
                    }),
                    decode_steps as u64,
                ))
            }
        }
    }

    /// Suspend a preemption victim through the paged host tier. On
    /// suspension failure (host pool exhausted) the victim comes back
    /// intact — decoding continues as if nothing happened, with the
    /// orphaned partial-swap metering folded into its transfer stats.
    fn park<'m>(a: Active<'m>, tier: &KvTier) -> Result<Parked, Box<Active<'m>>> {
        // Read before suspend: on success the session's cache is dropped
        // (its budget slots free for the usurper) and the stats would be
        // lost; on failure the session keeps its cache, so nothing folds.
        let cache_stats = a.session.cache_stats();
        let Active {
            id,
            session,
            next,
            remaining,
            generated,
            trace,
            admitted_tick,
            deadline,
            admitted_wall,
            wall_deadline,
            retries,
            priority,
            ttft_wall,
            ttft_ticks,
            decode_wall,
            extra_transfer,
            extra_cache,
            preemptions,
            recovered,
            max_degrade,
        } = a;
        match session.suspend(tier) {
            Ok(suspended) => Ok(Parked {
                id,
                suspended,
                next,
                remaining,
                generated,
                trace,
                admitted_tick,
                deadline,
                admitted_wall,
                wall_deadline,
                retries,
                priority,
                ttft_wall,
                ttft_ticks,
                decode_wall,
                extra_transfer,
                extra_cache: extra_cache + cache_stats,
                preemptions: preemptions + 1,
                recovered,
                max_degrade,
            }),
            Err(e) => Err(Box::new(Active {
                id,
                session: e.session,
                next,
                remaining,
                generated,
                trace,
                admitted_tick,
                deadline,
                admitted_wall,
                wall_deadline,
                retries,
                priority,
                ttft_wall,
                ttft_ticks,
                decode_wall,
                extra_transfer: extra_transfer + e.swap_transfer,
                extra_cache,
                preemptions,
                recovered,
                max_degrade,
            })),
        }
    }

    /// Resume a parked session into a freed slot with a fresh budget-backed
    /// cache. Decoding continues bit-identically to never having been
    /// preempted; the suspend+resume swap traffic lands in
    /// `extra_transfer` so per-completion accounting stays closed.
    fn reactivate<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        p: Parked,
        budget: &CacheBudget,
    ) -> Active<'m> {
        let Parked {
            id,
            suspended,
            next,
            remaining,
            generated,
            trace,
            admitted_tick,
            deadline,
            admitted_wall,
            wall_deadline,
            retries,
            priority,
            ttft_wall,
            ttft_ticks,
            decode_wall,
            extra_transfer,
            extra_cache,
            preemptions,
            recovered,
            max_degrade,
        } = p;
        let (session, swap_transfer) = suspended.resume(model, Self::fresh_cache(cfg, budget));
        Active {
            id,
            session,
            next,
            remaining,
            generated,
            trace,
            admitted_tick,
            deadline,
            admitted_wall,
            wall_deadline,
            retries,
            priority,
            ttft_wall,
            ttft_ticks,
            decode_wall,
            extra_transfer: extra_transfer + swap_transfer,
            extra_cache,
            preemptions,
            recovered,
            max_degrade,
        }
    }

    /// A completion for a request shed before it ever got a session.
    fn shed(
        req: &ServeRequest,
        shard: usize,
        error: ServeError,
        injected: bool,
        retries: u32,
    ) -> Completion {
        Completion {
            id: req.id,
            shard,
            generated: Vec::new(),
            transfer: TransferStats::default(),
            cache: CacheStats::default(),
            sharing: SharingStats::default(),
            trace: Vec::new(),
            failure: Some(FailureCause { error, injected, step: 0 }),
            retries,
            priority: req.priority,
            ttft_wall: None,
            ttft_ticks: None,
            tpot_wall: None,
            preemptions: 0,
            recovered: false,
            max_degrade_level: PressureLevel::Nominal,
        }
    }

    /// The one place an [`Active`] session becomes a [`Completion`]: full
    /// per-session stats (live namespace + swap traffic from preemption
    /// round trips), latency stamps, and the optional failure cause.
    fn complete(a: Active<'_>, shard: usize, failure: Option<FailureCause>) -> Completion {
        let tokens = a.generated.len() as u32;
        Completion {
            id: a.id,
            shard,
            transfer: a.session.transfer_stats() + a.extra_transfer,
            cache: a.session.cache_stats() + a.extra_cache,
            sharing: a.session.sharing_stats(),
            generated: a.generated,
            trace: a.trace,
            failure,
            retries: a.retries,
            priority: a.priority,
            ttft_wall: a.ttft_wall,
            ttft_ticks: a.ttft_ticks,
            tpot_wall: (tokens > 0).then(|| a.decode_wall / tokens),
            preemptions: a.preemptions,
            recovered: a.recovered,
            max_degrade_level: a.max_degrade,
        }
    }

    /// A completion for a session that failed mid-flight: partial output
    /// and real per-session stats, plus the classified cause.
    fn fail(a: Active<'_>, shard: usize, error: ServeError, injected: bool) -> Completion {
        // Decode steps *completed*, not attempted: a failed step attempt has
        // already bumped the session's counter, but served no token — every
        // failure class reports the same clock this way.
        let step = a.generated.len() as u64;
        Self::complete(a, shard, Some(FailureCause { error, injected, step }))
    }

    /// The `DeadlineExceeded` payload for an expiry on either clock. The
    /// deterministic tick deadline takes precedence when both elapsed; a
    /// wall (SLO) expiry reports **milliseconds** in the tick fields.
    fn deadline_cause(
        deadline: Option<u64>,
        wall_deadline: Option<Duration>,
        elapsed_ticks: u64,
        elapsed_wall: Duration,
    ) -> ServeError {
        if deadline.is_some_and(|d| elapsed_ticks >= d) {
            ServeError::DeadlineExceeded {
                deadline_ticks: deadline.unwrap_or(0),
                elapsed_ticks,
            }
        } else {
            ServeError::DeadlineExceeded {
                deadline_ticks: wall_deadline.unwrap_or_default().as_millis() as u64,
                elapsed_ticks: elapsed_wall.as_millis() as u64,
            }
        }
    }

    /// Reap sessions whose deadline elapsed on either clock: scheduler
    /// ticks (deterministic) or wall time since admission (SLO classes).
    fn reap_deadlines(
        active: &mut Vec<Active<'_>>,
        completions: &mut Vec<Completion>,
        shard: usize,
        tick: u64,
        now: Duration,
        stats: &mut ShardStats,
    ) {
        let mut i = 0;
        while i < active.len() {
            let a = &active[i];
            let elapsed = tick - a.admitted_tick;
            let elapsed_wall = now.saturating_sub(a.admitted_wall);
            let expired = a.remaining > 0
                && (a.deadline.is_some_and(|d| elapsed >= d)
                    || a.wall_deadline.is_some_and(|d| elapsed_wall >= d));
            if expired {
                let a = active.swap_remove(i);
                let cause =
                    Self::deadline_cause(a.deadline, a.wall_deadline, elapsed, elapsed_wall);
                stats.failed += 1;
                stats.shed_tokens += a.remaining as u64;
                completions.push(Self::fail(a, shard, cause, false));
            } else {
                i += 1;
            }
        }
    }

    /// Reap mid-prefill requests whose deadline elapsed: no session exists
    /// yet, so the completion is empty — `DeadlineExceeded` at step 0 with
    /// no first token (`ttft_*` stay `None`).
    fn reap_prefilling(
        prefilling: &mut Vec<Prefilling<'_>>,
        completions: &mut Vec<Completion>,
        shard: usize,
        tick: u64,
        now: Duration,
        stats: &mut ShardStats,
    ) {
        let mut i = 0;
        while i < prefilling.len() {
            let p = &prefilling[i];
            let elapsed = tick - p.admitted_tick;
            let elapsed_wall = now.saturating_sub(p.admitted_wall);
            let expired = p.deadline.is_some_and(|d| elapsed >= d)
                || p.wall_deadline.is_some_and(|d| elapsed_wall >= d);
            if expired {
                let p = prefilling.swap_remove(i);
                let cause =
                    Self::deadline_cause(p.deadline, p.wall_deadline, elapsed, elapsed_wall);
                stats.failed += 1;
                stats.shed_tokens += p.decode_steps as u64;
                completions.push(Completion {
                    id: p.id,
                    shard,
                    generated: Vec::new(),
                    transfer: TransferStats::default(),
                    cache: CacheStats::default(),
                    sharing: SharingStats::default(),
                    trace: Vec::new(),
                    failure: Some(FailureCause { error: cause, injected: false, step: 0 }),
                    retries: p.retries,
                    priority: p.priority,
                    ttft_wall: None,
                    ttft_ticks: None,
                    tpot_wall: None,
                    preemptions: 0,
                    recovered: false,
                    max_degrade_level: PressureLevel::Nominal,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Reap parked (preempted) sessions whose deadline elapsed while they
    /// waited for a slot. Dropping the suspended session unpins and
    /// releases its pages; the completion still accounts its full transfer
    /// history (live namespace + swap traffic) so the books stay closed.
    fn reap_parked(
        parked: &mut Vec<Parked>,
        completions: &mut Vec<Completion>,
        shard: usize,
        tick: u64,
        now: Duration,
        stats: &mut ShardStats,
    ) {
        let mut i = 0;
        while i < parked.len() {
            let pk = &parked[i];
            let elapsed = tick - pk.admitted_tick;
            let elapsed_wall = now.saturating_sub(pk.admitted_wall);
            let expired = pk.remaining > 0
                && (pk.deadline.is_some_and(|d| elapsed >= d)
                    || pk.wall_deadline.is_some_and(|d| elapsed_wall >= d));
            if expired {
                let p = parked.swap_remove(i);
                let cause =
                    Self::deadline_cause(p.deadline, p.wall_deadline, elapsed, elapsed_wall);
                stats.failed += 1;
                stats.shed_tokens += p.remaining as u64;
                let step = p.suspended.steps();
                let tokens = p.generated.len() as u32;
                completions.push(Completion {
                    id: p.id,
                    shard,
                    transfer: p.suspended.transfer_stats()
                        + p.suspended.swap_stats()
                        + p.extra_transfer,
                    cache: p.extra_cache,
                    sharing: p.suspended.sharing_stats(),
                    generated: p.generated,
                    trace: p.trace,
                    failure: Some(FailureCause { error: cause, injected: false, step }),
                    retries: p.retries,
                    priority: p.priority,
                    ttft_wall: p.ttft_wall,
                    ttft_ticks: p.ttft_ticks,
                    tpot_wall: (tokens > 0).then(|| p.decode_wall / tokens),
                    preemptions: p.preemptions,
                    recovered: p.recovered,
                    max_degrade_level: p.max_degrade,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Fail a dead shard's work over after the joins. Every request the
    /// shard popped but never completed gets exactly one completion: a
    /// checkpointed session replays forward on a surviving shard
    /// (bit-identical to the fault-free run), the rest fail typed with
    /// [`ServeError::ShardLost`]. Stranded queue items — pushed before the
    /// dying worker closed its queue, never popped — are drained last.
    #[allow(clippy::too_many_arguments)]
    fn recover_dead_shards(
        model: &Model,
        cfg: &ServeConfig,
        budget: &CacheBudget,
        registry: &Mutex<HashMap<u64, CheckpointEntry>>,
        inflight: &[Mutex<HashMap<u64, InflightInfo>>],
        dead: &[usize],
        queues: &[BoundedQueue<ServeRequest>],
        shard_stats: &mut [ShardStats],
        completions: &mut Vec<Completion>,
    ) {
        let injected = cfg.faults.as_ref().is_some_and(|p| !p.worker_kills.is_empty());
        let survivors: Vec<usize> = (0..cfg.shards).filter(|s| !dead.contains(s)).collect();
        let mut scratch = SessionScratch::new();
        let mut rr = 0usize;
        for &shard in dead {
            let mut lost: Vec<(u64, InflightInfo)> = lock(&inflight[shard]).drain().collect();
            lost.sort_by_key(|&(id, _)| id);
            for (id, info) in lost {
                let Some(entry) = lock(registry).remove(&id) else {
                    // Popped but never checkpointed: the session is gone.
                    shard_stats[shard].failed += 1;
                    shard_stats[shard].shed_tokens += info.decode_steps as u64;
                    completions.push(Completion {
                        id,
                        shard,
                        generated: Vec::new(),
                        transfer: TransferStats::default(),
                        cache: CacheStats::default(),
                        sharing: SharingStats::default(),
                        trace: Vec::new(),
                        failure: Some(FailureCause {
                            error: ServeError::ShardLost { shard },
                            injected,
                            step: 0,
                        }),
                        retries: info.retries,
                        priority: info.priority,
                        ttft_wall: None,
                        ttft_ticks: None,
                        tpot_wall: None,
                        preemptions: 0,
                        recovered: false,
                        max_degrade_level: PressureLevel::Nominal,
                    });
                    continue;
                };
                // Round-robin the replays over the survivors (the dead
                // shard itself when none survive — the coordinator does
                // the work either way, only the metering label differs).
                let target =
                    survivors.get(rr % survivors.len().max(1)).copied().unwrap_or(shard);
                rr += 1;
                let already = entry.generated.len();
                let remaining = entry.remaining;
                let c = Self::replay_from_checkpoint(
                    model, cfg, budget, id, entry, injected, target, &mut scratch,
                );
                let replayed = (c.generated.len() - already) as u64;
                if c.is_success() {
                    shard_stats[target].recovered_sessions += 1;
                    shard_stats[target].recovered_tokens += replayed;
                } else {
                    shard_stats[target].failed += 1;
                    shard_stats[target].shed_tokens += remaining as u64 - replayed;
                }
                completions.push(c);
            }
        }
        // Only a per-shard queue strands items behind a single dead worker;
        // the shared first-free queue goes undrained only when every worker
        // died.
        if queues.len() == cfg.shards {
            for &shard in dead {
                while let Some(req) = queues[shard].try_pop() {
                    shard_stats[shard].failed += 1;
                    shard_stats[shard].shed_tokens += req.decode_steps as u64;
                    completions.push(Self::shed(
                        &req,
                        shard,
                        ServeError::ShardLost { shard },
                        injected,
                        0,
                    ));
                }
            }
        } else if dead.len() == cfg.shards {
            let shard = dead[0];
            while let Some(req) = queues[0].try_pop() {
                shard_stats[shard].failed += 1;
                shard_stats[shard].shed_tokens += req.decode_steps as u64;
                completions.push(Self::shed(
                    &req,
                    shard,
                    ServeError::ShardLost { shard },
                    injected,
                    0,
                ));
            }
        }
    }

    /// Resume a checkpoint on the coordinator thread and decode it to
    /// completion — the failover replay. Bit-identical to the fault-free
    /// run by construction: resume is exact and decode is deterministic.
    /// No fault injection and no deadline reaping apply here (the module
    /// doc's recovery contract).
    #[allow(clippy::too_many_arguments)]
    fn replay_from_checkpoint(
        model: &Model,
        cfg: &ServeConfig,
        budget: &CacheBudget,
        id: u64,
        entry: CheckpointEntry,
        injected: bool,
        target: usize,
        scratch: &mut SessionScratch,
    ) -> Completion {
        let CheckpointEntry {
            suspended,
            mut next,
            mut remaining,
            mut generated,
            mut trace,
            retries,
            priority,
            ttft_wall,
            ttft_ticks,
            mut decode_wall,
            preemptions,
            // Replay runs at full effort on the coordinator (no controller
            // there), so the snapshot's high-water mark is final.
            max_degrade,
            base_transfer,
            base_cache,
        } = entry;
        // The registry only admits verified snapshots, but verify again at
        // the use site: the bytes sat in host memory since.
        if let Err(e) = suspended.verify() {
            let step = suspended.steps();
            let tokens = generated.len() as u32;
            return Completion {
                id,
                shard: target,
                transfer: base_transfer + suspended.swap_stats(),
                cache: base_cache,
                sharing: suspended.sharing_stats(),
                generated,
                trace,
                failure: Some(FailureCause { error: e.into(), injected, step }),
                retries,
                priority,
                ttft_wall,
                ttft_ticks,
                tpot_wall: (tokens > 0).then(|| decode_wall / tokens),
                preemptions,
                recovered: false,
                max_degrade_level: max_degrade,
            };
        }
        let (mut session, swap_transfer) =
            suspended.resume(model, Self::fresh_cache(cfg, budget));
        let mut failure = None;
        while remaining > 0 {
            let s0 = Instant::now();
            let stepped = session.try_step_with_scratch(next, scratch);
            decode_wall += s0.elapsed();
            match stepped {
                Ok(dec) => {
                    generated.push(next);
                    if cfg.record_trace {
                        trace.push(StepTrace {
                            logits: dec.logits.clone(),
                            selected: session.selected_snapshot(),
                        });
                    }
                    next = dec.greedy();
                    remaining -= 1;
                }
                Err(StepError::Store(e)) => {
                    failure = Some(FailureCause {
                        error: e.into(),
                        injected: false,
                        step: generated.len() as u64,
                    });
                    break;
                }
                Err(StepError::Poisoned { message }) => {
                    failure = Some(FailureCause {
                        error: ServeError::SessionPoisoned { message },
                        injected: false,
                        step: generated.len() as u64,
                    });
                    break;
                }
            }
        }
        let tokens = generated.len() as u32;
        Completion {
            id,
            shard: target,
            transfer: session.transfer_stats() + base_transfer + swap_transfer,
            cache: session.cache_stats() + base_cache,
            sharing: session.sharing_stats(),
            generated,
            trace,
            failure,
            retries,
            priority,
            ttft_wall,
            ttft_ticks,
            tpot_wall: (tokens > 0).then(|| decode_wall / tokens),
            preemptions,
            recovered: true,
            max_degrade_level: max_degrade,
        }
    }

    fn retire(active: &mut Vec<Active<'_>>, completions: &mut Vec<Completion>, shard: usize) {
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining == 0 {
                let a = active.swap_remove(i);
                completions.push(Self::complete(a, shard, None));
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_llm::LlmConfig;
    use pqc_policies::PqCachePolicy;

    fn session_cfg() -> SessionConfig {
        SessionConfig {
            n_init: 2,
            n_local: 8,
            token_ratio: 0.25,
            comm_fraction: 1.0 / 16.0,
            obs_window: 8,
            cache: pqc_core::CacheConfig {
                capacity_tokens: 64,
                block_size: 8,
                lfu: true,
                k_cache_blocks: 4,
            },
            ivf: pqc_core::IvfMode::Exact,
        }
    }

    fn prompt(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = pqc_tensor::Rng64::new(seed);
        (0..n).map(|_| rng.below(200) as u32).collect()
    }

    fn requests(n: usize) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(
                    i as u64,
                    prompt(48 + 8 * (i % 3), 100 + i as u64),
                    4 + i % 3,
                    Box::new(PqCachePolicy::default()),
                )
            })
            .collect()
    }

    #[test]
    fn serves_all_requests_to_completion() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 3,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(7)).unwrap();
        assert_eq!(report.completions.len(), 7);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            assert_eq!(c.generated.len(), 4 + i % 3);
            assert!(c.shard < 2);
            assert!(c.is_success());
            assert_eq!(c.retries, 0);
        }
        assert!(report.queue_high_water <= 3);
        let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
        assert_eq!(report.aggregate_transfer, sum);
        assert_eq!(report.tokens_decoded(), (0..7).map(|i| 4 + (i % 3) as u64).sum());
        assert_eq!(report.failures().count(), 0);
        assert!(!report.budget_underflow);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.total_shed_tokens(), 0);
    }

    #[test]
    fn zero_step_request_completes_without_decoding() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 2,
            session: session_cfg(),
            ..Default::default()
        };
        let reqs =
            vec![ServeRequest::new(9, prompt(48, 5), 0, Box::new(PqCachePolicy::default()))];
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        assert_eq!(report.completions.len(), 1);
        assert!(report.completions[0].generated.is_empty());
        // Prefill offload is still metered.
        assert!(report.completions[0].transfer.d2h_bytes > 0);
    }

    #[test]
    fn single_shard_report_is_deterministic() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let a = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        let b = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        for (ca, cb) in a.completions.iter().zip(b.completions.iter()) {
            assert_eq!(ca.generated, cb.generated);
            assert_eq!(ca.trace, cb.trace);
            assert_eq!(ca.transfer, cb.transfer);
        }
    }

    #[test]
    fn round_robin_places_deterministically() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            assignment: ShardAssignment::RoundRobin,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
        assert_eq!(report.completions.len(), 6);
        for c in &report.completions {
            assert_eq!(c.shard, (c.id % 2) as usize, "request {} misplaced", c.id);
        }
        // Balanced placement ⇒ both shards admitted equally.
        assert!(report.shards.iter().all(|s| s.admitted == 3));
        // And results match the first-free schedule bit-for-bit.
        let ff = ServeEngine::run(
            &model,
            &ServeConfig { assignment: ShardAssignment::FirstFree, ..cfg },
            requests(6),
        )
        .unwrap();
        for (a, b) in report.completions.iter().zip(ff.completions.iter()) {
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn ivf_probe_all_cells_serves_bit_identically() {
        // ServeConfig.session.ivf = Probe(n_list) reaches every admitted
        // session's policy: the full-probe fleet must reproduce the
        // exact-mode fleet's traces bit for bit (routing is transparent at
        // n_probe = n_list), sharing one IVF scratch per shard.
        let model = Model::new(LlmConfig::tiny());
        let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
        let run = |ivf| {
            let cfg = ServeConfig {
                shards: 2,
                max_active_per_shard: 2,
                queue_capacity: 4,
                session: SessionConfig { ivf, ..session_cfg() },
                record_trace: true,
                ..Default::default()
            };
            ServeEngine::run(&model, &cfg, requests(5)).unwrap()
        };
        let exact = run(pqc_core::IvfMode::Exact);
        let probe = run(pqc_core::IvfMode::Probe(n_list));
        assert_eq!(exact.completions.len(), probe.completions.len());
        for (a, b) in exact.completions.iter().zip(probe.completions.iter()) {
            assert_eq!(a.generated, b.generated, "request {} tokens diverged", a.id);
            assert_eq!(a.trace, b.trace, "request {} trace diverged", a.id);
            assert_eq!(a.transfer, b.transfer, "request {} transfers diverged", a.id);
        }
    }

    #[test]
    fn ivf_narrow_probe_fleet_completes() {
        // A genuinely sublinear fleet (probe 2 of 16 cells) must run to
        // completion under continuous batching.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: SessionConfig { ivf: pqc_core::IvfMode::Probe(2), ..session_cfg() },
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
        assert_eq!(report.completions.len(), 6);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.generated.len(), 4 + i % 3);
        }
    }

    #[test]
    fn prefix_cache_shares_pages_across_identical_prompts() {
        // One shard, sequential admission, four identical prompts: the
        // first session registers the prefix, the other three adopt it.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 7);
        let reqs = || {
            (0..4)
                .map(|i| {
                    ServeRequest::new(
                        i as u64,
                        toks.clone(),
                        5,
                        Box::new(PqCachePolicy::default()) as _,
                    )
                })
                .collect::<Vec<_>>()
        };
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let shared = ServeEngine::run(&model, &cfg, reqs()).unwrap();
        assert_eq!(shared.completions.len(), 4);
        assert_eq!(shared.prefix.lookups, 4);
        assert_eq!(shared.prefix.full_hits, 3);
        assert_eq!(shared.prefix.entries, 1);
        assert_eq!(shared.aggregate_sharing.prefix_hit_tokens, 3 * toks.len() as u64);
        // Everyone decodes the same continuation...
        for c in &shared.completions[1..] {
            assert_eq!(c.generated, shared.completions[0].generated);
            // ...and adopters skip the offload the cold session paid.
            assert!(c.sharing.prefix_hit_tokens == toks.len() as u64);
            assert!(c.transfer.d2h_bytes < shared.completions[0].transfer.d2h_bytes);
        }
        // Sharing off: same tokens, four full offloads, bigger host peak.
        let cold =
            ServeEngine::run(&model, &ServeConfig { prefix_cache: false, ..cfg }, reqs()).unwrap();
        assert_eq!(cold.prefix.lookups, 0);
        assert_eq!(cold.aggregate_sharing, SharingStats::default());
        for (a, b) in shared.completions.iter().zip(cold.completions.iter()) {
            assert_eq!(a.generated, b.generated, "prefix sharing changed results");
        }
        assert!(
            shared.peak_host_bytes < cold.peak_host_bytes,
            "sharing must shrink the host peak: {} vs {}",
            shared.peak_host_bytes,
            cold.peak_host_bytes
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let model = Model::new(LlmConfig::tiny());
        let bad = ServeConfig { shards: 0, ..Default::default() };
        let err = bad.validate().unwrap_err();
        assert_eq!(err.field, "shards");
        match ServeEngine::run(&model, &bad, Vec::new()) {
            Err(ServeError::Config(e)) => assert_eq!(e.field, "shards"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServeConfig { shards: 0, ..Default::default() }.validate_strict();
    }

    #[test]
    #[should_panic(expected = "queue capacity >= shards")]
    fn round_robin_needs_queue_slots() {
        ServeConfig {
            shards: 4,
            queue_capacity: 2,
            assignment: ShardAssignment::RoundRobin,
            ..Default::default()
        }
        .validate_strict();
    }

    #[test]
    fn injected_panic_fails_one_session_and_spares_the_rest() {
        let model = Model::new(LlmConfig::tiny());
        let clean_cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let clean = ServeEngine::run(&model, &clean_cfg, requests(5)).unwrap();
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(11).with_session_panic(2, 1)),
            ..clean_cfg
        };
        let report = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        assert_eq!(report.completions.len(), 5, "every request still completes");
        let failed = report.completion(2).unwrap();
        let cause = failed.failure.as_ref().expect("request 2 must fail");
        assert!(cause.injected);
        assert_eq!(cause.error.class(), "session_poisoned");
        assert_eq!(failed.generated.len(), 1, "one step decoded before the injected panic");
        // Survivors are bit-identical to the fault-free run.
        for id in [0u64, 1, 3, 4] {
            let a = clean.completion(id).unwrap();
            let b = report.completion(id).unwrap();
            assert!(b.is_success());
            assert_eq!(a.generated, b.generated, "survivor {id} diverged");
        }
        assert_eq!(report.shards[0].failed, 1);
        assert!(report.total_shed_tokens() > 0);
    }

    #[test]
    fn deadline_reaps_slow_session() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        let mut reqs = requests(2);
        reqs[0].decode_steps = 50;
        reqs[0].deadline = Some(3);
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        let reaped = report.completion(0).unwrap();
        let cause = reaped.failure.as_ref().expect("deadline must reap request 0");
        match &cause.error {
            ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks } => {
                assert_eq!(*deadline_ticks, 3);
                assert!(*elapsed_ticks >= 3);
            }
            other => panic!("unexpected cause {other:?}"),
        }
        assert!(reaped.generated.len() < 50);
        assert!(report.completion(1).unwrap().is_success());
    }

    #[test]
    fn admission_rejects_retry_then_succeed_or_shed() {
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        // Two rejections, default policy allows two retries: admitted on
        // the third attempt.
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(3).with_admission_rejects(1, 2)),
            ..base.clone()
        };
        let report = ServeEngine::run(&model, &cfg, requests(3)).unwrap();
        let retried = report.completion(1).unwrap();
        assert!(retried.is_success(), "should admit after retries: {:?}", retried.failure);
        assert_eq!(retried.retries, 2);
        assert_eq!(report.shards[0].retries, 2);
        // Rejections exceeding the retry budget shed the request.
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(3).with_admission_rejects(1, 10)),
            ..base
        };
        let report = ServeEngine::run(&model, &cfg, requests(3)).unwrap();
        let shed = report.completion(1).unwrap();
        let cause = shed.failure.as_ref().expect("request 1 must be shed");
        assert!(cause.injected);
        match cause.error {
            ServeError::Admission { attempts } => assert_eq!(attempts, 3),
            ref other => panic!("unexpected cause {other:?}"),
        }
        assert!(report.completion(0).unwrap().is_success());
        assert!(report.completion(2).unwrap().is_success());
    }

    #[test]
    fn chunked_prefill_serves_bit_identically_to_monolithic() {
        // The tentpole invariant: splitting prefill into tick-sized chunks
        // interleaved with decode must not change a single bit of any
        // session's output, trace, or transfer accounting.
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let mono = ServeEngine::run(&model, &base, requests(6)).unwrap();
        for chunk in [1usize, 7, 64] {
            let cfg = ServeConfig { prefill_chunk_tokens: Some(chunk), ..base.clone() };
            let chunked = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
            assert_eq!(chunked.completions.len(), 6);
            for (a, b) in mono.completions.iter().zip(chunked.completions.iter()) {
                assert!(b.is_success());
                assert_eq!(a.generated, b.generated, "chunk {chunk}: request {} tokens", a.id);
                assert_eq!(a.trace, b.trace, "chunk {chunk}: request {} trace", a.id);
                assert_eq!(a.transfer, b.transfer, "chunk {chunk}: request {} transfer", a.id);
                // Chunked prefill spends >= 1 tick before the first token;
                // monolithic admission spends 0.
                assert_eq!(a.ttft_ticks, Some(0));
                assert!(b.ttft_ticks.unwrap() >= 1);
            }
            let chunks: u64 = chunked.shards.iter().map(|s| s.prefill_chunks).sum();
            assert!(chunks > 0, "chunk {chunk}: prefill chunks must be metered");
            assert_eq!(mono.shards.iter().map(|s| s.prefill_chunks).sum::<u64>(), 0);
        }
    }

    #[test]
    fn chunk_budget_edge_cases_serve_identically() {
        // Budget of exactly the prompt length (one chunk), larger than the
        // prompt, and landing chunk boundaries exactly on page boundaries:
        // all bit-identical to monolithic.
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            page_tokens: 8,
            ..Default::default()
        };
        let mono = ServeEngine::run(&model, &base, requests(4)).unwrap();
        // Prompts are 48..=64 tokens (requests()); 8 rides page boundaries.
        for chunk in [8usize, 48, 500] {
            let cfg = ServeConfig { prefill_chunk_tokens: Some(chunk), ..base.clone() };
            let chunked = ServeEngine::run(&model, &cfg, requests(4)).unwrap();
            for (a, b) in mono.completions.iter().zip(chunked.completions.iter()) {
                assert!(b.is_success());
                assert_eq!(a.generated, b.generated, "chunk {chunk}: request {}", a.id);
                assert_eq!(a.trace, b.trace, "chunk {chunk}: request {}", a.id);
            }
            if chunk >= 64 {
                // One chunk swallows the whole prompt, but only one prefill
                // advances per tick: with two slots a prompt waits at most
                // one tick behind its neighbour's chunk.
                for c in &chunked.completions {
                    let t = c.ttft_ticks.unwrap();
                    assert!((1..=2).contains(&t), "request {}: ttft {t} ticks", c.id);
                }
            }
        }
        // A zero chunk budget is a config error, not a hang.
        let bad = ServeConfig { prefill_chunk_tokens: Some(0), ..base };
        assert_eq!(bad.validate().unwrap_err().field, "prefill_chunk_tokens");
    }

    #[test]
    fn high_priority_preempts_victim_and_resumes_it_bit_identically() {
        // One slot. The low-priority session decodes until the delayed
        // high-priority request matures, gets preempted through the paged
        // tier, and resumes after the high request retires — with output
        // bit-identical to an uncontended run.
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 1,
            queue_capacity: 4,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let mk = |priorities: bool| {
            let mut reqs = requests(2);
            reqs[0].decode_steps = 24;
            reqs[1].decode_steps = 4;
            if priorities {
                reqs[0].priority = Priority::Low;
                reqs[1].priority = Priority::High;
            }
            reqs
        };
        let reference = ServeEngine::run(&model, &base, mk(false)).unwrap();
        // Delay the high request one injected rejection so the low session
        // is mid-decode when it matures — forcing the preemption path
        // regardless of producer/worker timing.
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(21).with_admission_rejects(1, 1)),
            ..base
        };
        let report = ServeEngine::run(&model, &cfg, mk(true)).unwrap();
        assert_eq!(report.total_preemptions(), 1, "exactly one preemption");
        let low = report.completion(0).unwrap();
        let high = report.completion(1).unwrap();
        assert!(low.is_success() && high.is_success());
        assert_eq!(low.preemptions, 1);
        assert_eq!(high.preemptions, 0);
        assert_eq!(low.priority, Priority::Low);
        assert_eq!(high.priority, Priority::High);
        // Preemption never changes results: both sessions match the
        // uncontended run bit for bit.
        for id in [0u64, 1] {
            let a = reference.completion(id).unwrap();
            let b = report.completion(id).unwrap();
            assert_eq!(a.generated, b.generated, "request {id} tokens diverged");
            assert_eq!(a.trace, b.trace, "request {id} trace diverged");
        }
        // The suspend/resume swap traffic is accounted: the victim moved
        // real bytes both ways, and the tier aggregate still equals the sum
        // of per-completion transfers.
        assert!(low.transfer.d2h_bytes > reference.completion(0).unwrap().transfer.d2h_bytes);
        assert!(low.transfer.h2d_bytes > reference.completion(0).unwrap().transfer.h2d_bytes);
        let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
        assert_eq!(report.aggregate_transfer, sum, "preemption must not leak transfer accounting");
    }

    #[test]
    fn all_normal_priorities_never_preempt() {
        // Preemption requires a *strictly* higher class: a uniform fleet
        // under slot pressure keeps plain FIFO continuous batching.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 1,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        assert_eq!(report.total_preemptions(), 0);
        assert!(report.completions.iter().all(|c| c.is_success() && c.preemptions == 0));
    }

    #[test]
    fn deadline_reaps_mid_prefill_as_deadline_exceeded() {
        // Chunk budget 1 on a ~48-token prompt needs ~48 ticks of prefill;
        // a 5-tick deadline expires long before the first token.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            prefill_chunk_tokens: Some(1),
            ..Default::default()
        };
        let mut reqs = requests(2);
        reqs[0].deadline = Some(5);
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        let reaped = report.completion(0).unwrap();
        let cause = reaped.failure.as_ref().expect("request 0 must be reaped mid-prefill");
        match &cause.error {
            ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks } => {
                assert_eq!(*deadline_ticks, 5);
                assert!(*elapsed_ticks >= 5);
            }
            other => panic!("unexpected cause {other:?}"),
        }
        assert_eq!(cause.step, 0, "no session ever existed");
        assert!(reaped.generated.is_empty());
        assert_eq!(reaped.ttft_wall, None, "no first token was produced");
        assert_eq!(reaped.ttft_ticks, None);
        assert_eq!(reaped.tpot_wall, None);
        assert!(report.completion(1).unwrap().is_success(), "the other request is untouched");
    }

    #[test]
    fn prefix_adoption_still_wins_under_chunked_admission() {
        // The prefix-cache fast path outranks chunking: an identical
        // already-served prompt adopts instantly (0-tick TTFT) instead of
        // re-prefilling chunk by chunk.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 7);
        let reqs = || {
            (0..2)
                .map(|i| {
                    ServeRequest::new(i, toks.clone(), 5, Box::new(PqCachePolicy::default()) as _)
                })
                .collect::<Vec<_>>()
        };
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 1,
            queue_capacity: 4,
            session: session_cfg(),
            prefill_chunk_tokens: Some(8),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, reqs()).unwrap();
        assert_eq!(report.prefix.full_hits, 1);
        let first = report.completion(0).unwrap();
        let second = report.completion(1).unwrap();
        assert_eq!(first.generated, second.generated);
        assert!(first.ttft_ticks.unwrap() >= 1, "cold prompt prefills chunk by chunk");
        assert_eq!(second.ttft_ticks, Some(0), "adopter skips prefill entirely");
    }

    #[test]
    fn latency_summary_covers_every_completion() {
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let mono = ServeEngine::run(&model, &base, requests(5)).unwrap();
        assert_eq!(mono.latency.ttft_wall.count, 5);
        assert_eq!(mono.latency.ttft_ticks.count, 5);
        assert_eq!(mono.latency.tpot_wall.count, 5);
        assert_eq!(mono.latency.ttft_ticks.max, 0.0, "monolithic prefill is a 0-tick event");
        assert!(mono.latency.tpot_wall.p50 > 0.0);
        let cfg = ServeConfig { prefill_chunk_tokens: Some(7), ..base };
        let chunked = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        assert_eq!(chunked.latency.ttft_ticks.count, 5);
        assert!(chunked.latency.ttft_ticks.p50 >= 1.0, "chunked prefill spends ticks");
        assert!(chunked.latency.ttft_wall.max >= chunked.latency.ttft_wall.p50);
    }

    #[test]
    fn shard_stall_degrades_without_changing_results() {
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let clean = ServeEngine::run(&model, &base, requests(4)).unwrap();
        let cfg =
            ServeConfig { faults: Some(FaultPlan::seeded(5).with_stall(0, 1, 3)), ..base };
        let stalled = ServeEngine::run(&model, &cfg, requests(4)).unwrap();
        assert!(stalled.total_stalled_steps() > 0, "stall must meter stalled steps");
        assert_eq!(
            stalled.total_degraded_steps(),
            0,
            "no brownout controller, so no degraded steps"
        );
        assert_eq!(clean.completions.len(), stalled.completions.len());
        for (a, b) in clean.completions.iter().zip(stalled.completions.iter()) {
            assert!(b.is_success());
            assert_eq!(a.generated, b.generated, "stall changed request {} output", a.id);
        }
        // Note: tick totals are NOT compared across the two runs — the
        // clean run's idle-tick count depends on producer/worker timing.
        // The degraded-steps meter above is the deterministic evidence.
    }

    #[test]
    fn checkpointing_is_transparent_and_metered() {
        // Snapshotting every resident session every 2 ticks must not
        // change one bit of any output — checkpoint() forks state, never
        // touches the live session — while the snapshot traffic is
        // metered.
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let off = ServeEngine::run(&model, &base, requests(6)).unwrap();
        let cfg = ServeConfig { checkpoint_every_ticks: Some(2), ..base };
        let on = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
        assert_eq!(on.completions.len(), 6);
        for (a, b) in off.completions.iter().zip(on.completions.iter()) {
            assert!(b.is_success());
            assert!(!b.recovered, "no fault, nothing recovered");
            assert_eq!(a.generated, b.generated, "request {}: checkpointing changed tokens", a.id);
            assert_eq!(a.trace, b.trace, "request {}: checkpointing changed the trace", a.id);
        }
        assert!(on.total_checkpoints() > 0, "snapshots must be metered");
        assert!(on.total_checkpoint_bytes() > 0, "snapshot offload must move bytes");
        assert_eq!(off.total_checkpoints(), 0);
        assert_eq!(on.total_rollbacks(), 0);
        assert_eq!(on.total_recovered_sessions(), 0);
    }

    #[test]
    fn zero_checkpoint_cadence_rejected() {
        let bad = ServeConfig { checkpoint_every_ticks: Some(0), ..Default::default() };
        assert_eq!(bad.validate().unwrap_err().field, "checkpoint_every_ticks");
    }

    #[test]
    fn arrival_tick_holds_admission_until_the_clock_matures() {
        // Time-accurate replay: a request stamped arrival_tick 50 must not
        // be admitted before the shard's clock reaches 50 — the shard
        // burns idle ticks to mature it, consuming no retries.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        let mut reqs = requests(2);
        reqs[1].arrival_tick = 50;
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        assert_eq!(report.completions.len(), 2);
        for c in &report.completions {
            assert!(c.is_success(), "request {} failed: {:?}", c.id, c.failure);
            assert_eq!(c.retries, 0, "arrival gating must not consume retries");
        }
        assert!(
            report.shards[0].ticks >= 50,
            "the shard clock must reach the recorded arrival (got {})",
            report.shards[0].ticks
        );
    }

    #[test]
    fn zero_wall_deadline_is_reaped_as_deadline_exceeded() {
        // A wall-clock SLO of zero expires at the first reap pass; the
        // neighbour without one is untouched.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        let mut reqs = requests(2);
        reqs[0].decode_steps = 50;
        reqs[0].wall_deadline = Some(Duration::ZERO);
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        let reaped = report.completion(0).unwrap();
        let cause = reaped.failure.as_ref().expect("zero wall deadline must reap");
        assert_eq!(cause.error.class(), "deadline_exceeded");
        assert!(reaped.generated.len() < 50);
        assert!(report.completion(1).unwrap().is_success());
    }
}
