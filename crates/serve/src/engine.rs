//! The sharded serve engine: continuous batching over `SelectiveSession`s.
//!
//! `ServeEngine::run` owns the whole lifecycle of a request batch:
//!
//! 1. requests are admitted through a [`BoundedQueue`] (back-pressure);
//! 2. each of `shards` worker threads pulls requests, prefills them, and
//!    binds the session to a fresh [`KvTier`] namespace and a
//!    [`BlockCache`] drawing on the engine-wide [`CacheBudget`];
//! 3. every scheduler tick steps each ready session once through the
//!    shard's single [`SessionScratch`] (continuous batching: sessions at
//!    different depths coexist in one tick loop, finished sessions retire
//!    and free their slot for the next queued request);
//! 4. completions carry per-session stats; the report adds the tier-wide
//!    aggregate, queue high-water, and per-shard busy time.
//!
//! Scheduling never changes results: a token decoded here is bit-identical
//! to the same session run alone through `SelectiveSession::decode`
//! (locked down by `tests/serve_equivalence.rs`).

use crate::queue::BoundedQueue;
use pqc_cache::{BlockCache, CacheBudget, CacheStats};
use pqc_core::{SelectiveSession, SessionConfig, SessionResources, SessionScratch};
use pqc_llm::{Model, PrefillOutput};
use pqc_memhier::{KvTier, PrefixCacheStats, SharingStats, TransferStats, DEFAULT_PAGE_TOKENS};
use pqc_policies::{SelectionPolicy, SharedPolicyState};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How requests map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardAssignment {
    /// One shared queue; whichever worker has a free slot first takes the
    /// request. Work-conserving — the right default for live traffic.
    #[default]
    FirstFree,
    /// Request `i` goes to shard `i mod shards` through per-shard queues.
    /// Deterministic placement and balance independent of OS scheduling —
    /// what benchmarks and placement-sensitive tests want (on a host with
    /// fewer cores than shards, first-free lets one timesliced worker
    /// drain the queue while the rest starve, which skews per-shard load).
    RoundRobin,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one shard of the session pool.
    pub shards: usize,
    /// Continuous-batching width: sessions decoded per shard per tick.
    pub max_active_per_shard: usize,
    /// Admission-queue bound across all shards (back-pressure on the
    /// producer). Round-robin splits it evenly over the per-shard queues,
    /// so it must be ≥ `shards` in that mode.
    pub queue_capacity: usize,
    /// Request→shard placement.
    pub assignment: ShardAssignment,
    /// Per-session engine configuration (segmentation, budgets, cache).
    pub session: SessionConfig,
    /// Sessions' worth of GPU cache backing the global [`CacheBudget`];
    /// `None` sizes it for the peak concurrency (`shards ×
    /// max_active_per_shard`), which reproduces standalone cache behaviour
    /// exactly. Smaller values exercise cross-session cache pressure.
    pub cache_budget_sessions: Option<usize>,
    /// Record per-step logits and selected-token sets in each completion
    /// (the equivalence battery's evidence; costs memory).
    pub record_trace: bool,
    /// Parallelise prefill across kv heads inside a worker. Off by default:
    /// shard workers are the parallelism axis, and nesting head threads
    /// under every worker oversubscribes the host.
    pub prefill_parallel: bool,
    /// Share host KV pages and trained PQ/IVF state across sessions whose
    /// prompts are identical (vLLM-style prefix caching on the paged tier).
    /// On by default — sharing is exact, so results are bit-identical to a
    /// cold start; turn off to model a fleet without prefix reuse.
    pub prefix_cache: bool,
    /// Host-tier page size in tokens (the paged `KvTier` granularity).
    pub page_tokens: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            max_active_per_shard: 4,
            queue_capacity: 16,
            assignment: ShardAssignment::FirstFree,
            session: SessionConfig::default(),
            cache_budget_sessions: None,
            record_trace: false,
            prefill_parallel: false,
            prefix_cache: true,
            page_tokens: DEFAULT_PAGE_TOKENS,
        }
    }
}

impl ServeConfig {
    /// Validate; panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.max_active_per_shard > 0, "need at least one session slot per shard");
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
        assert!(self.page_tokens > 0, "page size must be positive");
        if self.assignment == ShardAssignment::RoundRobin {
            assert!(
                self.queue_capacity >= self.shards,
                "round-robin needs queue capacity >= shards (one slot per shard queue)"
            );
        }
        self.session.validate();
    }

    /// Peak concurrent sessions the engine will run.
    pub fn peak_sessions(&self) -> usize {
        self.shards * self.max_active_per_shard
    }
}

/// One admission: a prompt plus how many tokens to decode greedily.
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the completion (must be unique).
    pub id: u64,
    /// Prompt tokens (must satisfy the session's segmentation minimum).
    pub tokens: Vec<u32>,
    /// Greedy decode steps to run after prefill.
    pub decode_steps: usize,
    /// Selection policy instance for this session.
    pub policy: Box<dyn SelectionPolicy + Send>,
}

/// What the first session to serve a prompt leaves behind in the tier's
/// prefix registry, alongside the refcounted KV pages: the deterministic
/// prefill output (logits, score captures) and the trained PQ/IVF policy
/// snapshot. Later sessions with the same prompt adopt all three and skip
/// prefill, offload, and clustering entirely.
struct SharedPrefix {
    prefill: PrefillOutput,
    policy: Option<SharedPolicyState>,
}

/// Per-step evidence captured when [`ServeConfig::record_trace`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// The step's classifier logits.
    pub logits: Vec<f32>,
    /// Selected middle tokens (absolute ids), `[layer][kv_head]`.
    pub selected: Vec<Vec<Vec<usize>>>,
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Shard (worker) that served the session.
    pub shard: usize,
    /// Greedy-decoded tokens, `decode_steps` of them.
    pub generated: Vec<u32>,
    /// This session's host-transfer stats (its KvTier namespace).
    pub transfer: TransferStats,
    /// This session's GPU block-cache stats.
    pub cache: CacheStats,
    /// Prefix-sharing stats: prompt tokens adopted from the prefix cache
    /// and copy-on-write page copies this session triggered.
    pub sharing: SharingStats,
    /// Per-step trace (empty unless [`ServeConfig::record_trace`]).
    pub trace: Vec<StepTrace>,
}

/// Per-shard scheduling statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Sessions admitted on this shard.
    pub admitted: u64,
    /// Wall time spent prefilling + decoding (excludes queue waits).
    /// Caveat: on a host with fewer cores than shards this includes time
    /// preempted by sibling workers — use a per-shard single-thread run
    /// (as `benches/serve_throughput.rs` does) to model one-core-per-shard
    /// occupancy.
    pub busy: Duration,
}

/// Everything `ServeEngine::run` produces.
#[derive(Debug)]
pub struct ServeReport {
    /// Completions, sorted by request id.
    pub completions: Vec<Completion>,
    /// Tier-wide transfer aggregate (equals the sum of per-completion
    /// transfer stats — asserted by the equivalence battery).
    pub aggregate_transfer: TransferStats,
    /// Highest queue occupancy observed (≤ the configured bound).
    pub queue_high_water: usize,
    /// Prefix-cache registry counters (lookups, full/partial hits, entries).
    pub prefix: PrefixCacheStats,
    /// Tier-wide sharing aggregate (equals the sum of per-completion
    /// [`Completion::sharing`]).
    pub aggregate_sharing: SharingStats,
    /// Peak host-tier footprint over the run: distinct pages held at the
    /// busiest instant × page bytes. With prefix sharing on, a fleet of
    /// identical prompts peaks near O(unique tokens) instead of
    /// O(sessions × tokens).
    pub peak_host_bytes: u64,
    /// Per-shard scheduling stats.
    pub shards: Vec<ShardStats>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl ServeReport {
    /// Total decoded tokens across completions.
    pub fn tokens_decoded(&self) -> u64 {
        self.completions.iter().map(|c| c.generated.len() as u64).sum()
    }

    /// The completion for a request id, if present.
    pub fn completion(&self, id: u64) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// The busiest shard's occupied time — the modelled wall-clock of the
    /// run on a host with one core per shard (shards share nothing on the
    /// decode path, so their busy intervals overlap there).
    pub fn max_shard_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).max().unwrap_or(Duration::ZERO)
    }
}

/// An in-flight session on a shard.
struct Active<'m> {
    id: u64,
    session: SelectiveSession<'m>,
    next: u32,
    remaining: usize,
    generated: Vec<u32>,
    trace: Vec<StepTrace>,
}

struct ShardOutput {
    completions: Vec<Completion>,
    stats: ShardStats,
}

/// The sharded multi-session serving engine. Stateless: each [`Self::run`]
/// call owns its workers, tier, and budget for the duration of the batch.
pub struct ServeEngine;

impl ServeEngine {
    /// Serve `requests` to completion and return the report.
    ///
    /// Blocks until every admitted request has finished. Request→shard
    /// assignment is first-free-worker (work conserving), which is safe
    /// because results are scheduling-independent.
    pub fn run(model: &Model, cfg: &ServeConfig, requests: Vec<ServeRequest>) -> ServeReport {
        cfg.validate();
        let mcfg = model.config();
        let tier =
            KvTier::with_pages(mcfg.n_layers, mcfg.n_kv_heads, mcfg.head_dim, cfg.page_tokens, None);
        let budget_sessions = cfg.cache_budget_sessions.unwrap_or_else(|| cfg.peak_sessions());
        let budget = CacheBudget::for_tokens(
            cfg.session.cache.capacity_tokens * budget_sessions,
            cfg.session.cache.block_size,
        );
        // FirstFree: one shared queue. RoundRobin: one queue per shard,
        // splitting the global bound exactly (first `remainder` shards get
        // the extra slot, so per-shard capacities sum to queue_capacity).
        let queues: Vec<BoundedQueue<ServeRequest>> = match cfg.assignment {
            ShardAssignment::FirstFree => vec![BoundedQueue::new(cfg.queue_capacity)],
            ShardAssignment::RoundRobin => (0..cfg.shards)
                .map(|i| {
                    let base = cfg.queue_capacity / cfg.shards;
                    BoundedQueue::new(base + usize::from(i < cfg.queue_capacity % cfg.shards))
                })
                .collect(),
        };
        let start = Instant::now();

        let (mut completions, shard_stats) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.shards)
                .map(|shard| {
                    let queue = &queues[shard % queues.len()];
                    let tier = tier.clone();
                    let budget = budget.clone();
                    scope.spawn(move || Self::worker(model, cfg, shard, queue, tier, budget))
                })
                .collect();

            // The caller's thread is the producer: bounded pushes are the
            // admission back-pressure.
            for (i, req) in requests.into_iter().enumerate() {
                if queues[i % queues.len()].push(req).is_err() {
                    unreachable!("queue closed while producing");
                }
            }
            for q in &queues {
                q.close();
            }

            let mut completions = Vec::new();
            let mut shard_stats = Vec::with_capacity(cfg.shards);
            for h in handles {
                let out = h.join().expect("shard worker panicked");
                completions.extend(out.completions);
                shard_stats.push(out.stats);
            }
            (completions, shard_stats)
        });

        completions.sort_by_key(|c| c.id);
        ServeReport {
            completions,
            aggregate_transfer: tier.aggregate_stats(),
            prefix: tier.prefix_stats(),
            aggregate_sharing: tier.aggregate_sharing(),
            peak_host_bytes: tier.allocator().peak_resident_bytes(),
            // Sum of per-queue high waters: an upper bound on peak global
            // occupancy, itself bounded by the configured capacity.
            queue_high_water: queues.iter().map(BoundedQueue::high_water).sum(),
            shards: shard_stats,
            wall: start.elapsed(),
        }
    }

    fn worker<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        shard: usize,
        queue: &BoundedQueue<ServeRequest>,
        tier: KvTier,
        budget: CacheBudget,
    ) -> ShardOutput {
        let mut scratch = SessionScratch::new();
        let mut active: Vec<Active<'m>> = Vec::new();
        let mut completions = Vec::new();
        let mut stats = ShardStats::default();

        loop {
            // Admission: fill free slots. Block only when idle — a shard
            // with live sessions keeps decoding while the queue is empty.
            while active.len() < cfg.max_active_per_shard {
                let req = if active.is_empty() {
                    match queue.pop_wait() {
                        Some(r) => r,
                        None => {
                            return ShardOutput { completions, stats };
                        }
                    }
                } else {
                    match queue.try_pop() {
                        Some(r) => r,
                        None => break,
                    }
                };
                let t0 = Instant::now();
                active.push(Self::admit(model, cfg, req, &tier, &budget));
                stats.busy += t0.elapsed();
                stats.admitted += 1;
            }
            Self::retire(&mut active, &mut completions, shard);
            if active.is_empty() {
                continue;
            }

            // One scheduler tick: each ready session decodes one token
            // through the shard's shared scratch.
            stats.ticks += 1;
            let t0 = Instant::now();
            for a in active.iter_mut() {
                let token = a.next;
                let dec = a.session.step_with_scratch(token, &mut scratch);
                a.generated.push(token);
                if cfg.record_trace {
                    a.trace.push(StepTrace {
                        logits: dec.logits.clone(),
                        selected: a.session.selected_snapshot(),
                    });
                }
                a.next = dec.greedy();
                a.remaining -= 1;
            }
            stats.busy += t0.elapsed();
            Self::retire(&mut active, &mut completions, shard);
        }
    }

    fn admit<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        req: ServeRequest,
        tier: &KvTier,
        budget: &CacheBudget,
    ) -> Active<'m> {
        let cache = || {
            BlockCache::with_budget(
                cfg.session.cache.capacity_tokens,
                cfg.session.cache.block_size,
                cfg.session.cache.policy(),
                budget.clone(),
            )
        };

        // Prefix-cache fast path: an identical prompt already served means
        // the pages, prefill output, and trained policy state are all in
        // the tier — adopt them instead of recomputing. Only a full-prompt
        // hit qualifies; a partial hit would still need a partial prefill,
        // which the dense model here cannot resume mid-prompt.
        if cfg.prefix_cache {
            if let Some(hit) = tier.lookup_prefix(&req.tokens) {
                if hit.len() == req.tokens.len() {
                    if let Some(shared) = hit.payload().downcast_ref::<SharedPrefix>() {
                        let resources = SessionResources {
                            store: tier.new_namespace_with_prefix(&hit),
                            cache: cache(),
                        };
                        let start = SelectiveSession::start_from_shared_prefix(
                            model,
                            req.policy,
                            cfg.session,
                            &shared.prefill,
                            resources,
                            shared.policy.as_ref(),
                        );
                        return Active {
                            id: req.id,
                            session: start.session,
                            next: pqc_tensor::argmax(&start.logits) as u32,
                            remaining: req.decode_steps,
                            generated: Vec::with_capacity(req.decode_steps),
                            trace: Vec::new(),
                        };
                    }
                }
            }
        }

        let mut opts = SelectiveSession::prefill_options(&cfg.session, req.tokens.len());
        opts.parallel = cfg.prefill_parallel;
        let prefill = model.prefill(&req.tokens, &opts);
        let resources = SessionResources { store: tier.new_namespace(), cache: cache() };
        let start = SelectiveSession::start_from_prefill_in(
            model,
            req.policy,
            cfg.session,
            &prefill,
            resources,
        );
        if cfg.prefix_cache {
            // First server of this prompt donates its pages + policy state.
            // Racing registrants are benign: first wins, the loser just
            // keeps its private copy.
            let payload =
                Arc::new(SharedPrefix { policy: start.session.export_policy_state(), prefill });
            let _ = tier.register_prefix(&req.tokens, start.session.store(), payload);
        }
        Active {
            id: req.id,
            session: start.session,
            next: pqc_tensor::argmax(&start.logits) as u32,
            remaining: req.decode_steps,
            generated: Vec::with_capacity(req.decode_steps),
            trace: Vec::new(),
        }
    }

    fn retire(active: &mut Vec<Active<'_>>, completions: &mut Vec<Completion>, shard: usize) {
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining == 0 {
                let a = active.swap_remove(i);
                completions.push(Completion {
                    id: a.id,
                    shard,
                    generated: a.generated,
                    transfer: a.session.transfer_stats(),
                    cache: a.session.cache_stats(),
                    sharing: a.session.sharing_stats(),
                    trace: a.trace,
                });
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_llm::LlmConfig;
    use pqc_policies::PqCachePolicy;

    fn session_cfg() -> SessionConfig {
        SessionConfig {
            n_init: 2,
            n_local: 8,
            token_ratio: 0.25,
            comm_fraction: 1.0 / 16.0,
            obs_window: 8,
            cache: pqc_core::CacheConfig {
                capacity_tokens: 64,
                block_size: 8,
                lfu: true,
                k_cache_blocks: 4,
            },
            ivf: pqc_core::IvfMode::Exact,
        }
    }

    fn prompt(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = pqc_tensor::Rng64::new(seed);
        (0..n).map(|_| rng.below(200) as u32).collect()
    }

    fn requests(n: usize) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| ServeRequest {
                id: i as u64,
                tokens: prompt(48 + 8 * (i % 3), 100 + i as u64),
                decode_steps: 4 + i % 3,
                policy: Box::new(PqCachePolicy::default()),
            })
            .collect()
    }

    #[test]
    fn serves_all_requests_to_completion() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 3,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(7));
        assert_eq!(report.completions.len(), 7);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            assert_eq!(c.generated.len(), 4 + i % 3);
            assert!(c.shard < 2);
        }
        assert!(report.queue_high_water <= 3);
        let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
        assert_eq!(report.aggregate_transfer, sum);
        assert_eq!(report.tokens_decoded(), (0..7).map(|i| 4 + (i % 3) as u64).sum());
    }

    #[test]
    fn zero_step_request_completes_without_decoding() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 2,
            session: session_cfg(),
            ..Default::default()
        };
        let reqs = vec![ServeRequest {
            id: 9,
            tokens: prompt(48, 5),
            decode_steps: 0,
            policy: Box::new(PqCachePolicy::default()),
        }];
        let report = ServeEngine::run(&model, &cfg, reqs);
        assert_eq!(report.completions.len(), 1);
        assert!(report.completions[0].generated.is_empty());
        // Prefill offload is still metered.
        assert!(report.completions[0].transfer.d2h_bytes > 0);
    }

    #[test]
    fn single_shard_report_is_deterministic() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let a = ServeEngine::run(&model, &cfg, requests(5));
        let b = ServeEngine::run(&model, &cfg, requests(5));
        for (ca, cb) in a.completions.iter().zip(b.completions.iter()) {
            assert_eq!(ca.generated, cb.generated);
            assert_eq!(ca.trace, cb.trace);
            assert_eq!(ca.transfer, cb.transfer);
        }
    }

    #[test]
    fn round_robin_places_deterministically() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            assignment: ShardAssignment::RoundRobin,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6));
        assert_eq!(report.completions.len(), 6);
        for c in &report.completions {
            assert_eq!(c.shard, (c.id % 2) as usize, "request {} misplaced", c.id);
        }
        // Balanced placement ⇒ both shards admitted equally.
        assert!(report.shards.iter().all(|s| s.admitted == 3));
        // And results match the first-free schedule bit-for-bit.
        let ff = ServeEngine::run(
            &model,
            &ServeConfig { assignment: ShardAssignment::FirstFree, ..cfg },
            requests(6),
        );
        for (a, b) in report.completions.iter().zip(ff.completions.iter()) {
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn ivf_probe_all_cells_serves_bit_identically() {
        // ServeConfig.session.ivf = Probe(n_list) reaches every admitted
        // session's policy: the full-probe fleet must reproduce the
        // exact-mode fleet's traces bit for bit (routing is transparent at
        // n_probe = n_list), sharing one IVF scratch per shard.
        let model = Model::new(LlmConfig::tiny());
        let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
        let run = |ivf| {
            let cfg = ServeConfig {
                shards: 2,
                max_active_per_shard: 2,
                queue_capacity: 4,
                session: SessionConfig { ivf, ..session_cfg() },
                record_trace: true,
                ..Default::default()
            };
            ServeEngine::run(&model, &cfg, requests(5))
        };
        let exact = run(pqc_core::IvfMode::Exact);
        let probe = run(pqc_core::IvfMode::Probe(n_list));
        assert_eq!(exact.completions.len(), probe.completions.len());
        for (a, b) in exact.completions.iter().zip(probe.completions.iter()) {
            assert_eq!(a.generated, b.generated, "request {} tokens diverged", a.id);
            assert_eq!(a.trace, b.trace, "request {} trace diverged", a.id);
            assert_eq!(a.transfer, b.transfer, "request {} transfers diverged", a.id);
        }
    }

    #[test]
    fn ivf_narrow_probe_fleet_completes() {
        // A genuinely sublinear fleet (probe 2 of 16 cells) must run to
        // completion under continuous batching.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: SessionConfig { ivf: pqc_core::IvfMode::Probe(2), ..session_cfg() },
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6));
        assert_eq!(report.completions.len(), 6);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.generated.len(), 4 + i % 3);
        }
    }

    #[test]
    fn prefix_cache_shares_pages_across_identical_prompts() {
        // One shard, sequential admission, four identical prompts: the
        // first session registers the prefix, the other three adopt it.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 7);
        let reqs = || {
            (0..4)
                .map(|i| ServeRequest {
                    id: i as u64,
                    tokens: toks.clone(),
                    decode_steps: 5,
                    policy: Box::new(PqCachePolicy::default()) as _,
                })
                .collect::<Vec<_>>()
        };
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let shared = ServeEngine::run(&model, &cfg, reqs());
        assert_eq!(shared.completions.len(), 4);
        assert_eq!(shared.prefix.lookups, 4);
        assert_eq!(shared.prefix.full_hits, 3);
        assert_eq!(shared.prefix.entries, 1);
        assert_eq!(shared.aggregate_sharing.prefix_hit_tokens, 3 * toks.len() as u64);
        // Everyone decodes the same continuation...
        for c in &shared.completions[1..] {
            assert_eq!(c.generated, shared.completions[0].generated);
            // ...and adopters skip the offload the cold session paid.
            assert!(c.sharing.prefix_hit_tokens == toks.len() as u64);
            assert!(c.transfer.d2h_bytes < shared.completions[0].transfer.d2h_bytes);
        }
        // Sharing off: same tokens, four full offloads, bigger host peak.
        let cold =
            ServeEngine::run(&model, &ServeConfig { prefix_cache: false, ..cfg }, reqs());
        assert_eq!(cold.prefix.lookups, 0);
        assert_eq!(cold.aggregate_sharing, SharingStats::default());
        for (a, b) in shared.completions.iter().zip(cold.completions.iter()) {
            assert_eq!(a.generated, b.generated, "prefix sharing changed results");
        }
        assert!(
            shared.peak_host_bytes < cold.peak_host_bytes,
            "sharing must shrink the host peak: {} vs {}",
            shared.peak_host_bytes,
            cold.peak_host_bytes
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServeConfig { shards: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "queue capacity >= shards")]
    fn round_robin_needs_queue_slots() {
        ServeConfig {
            shards: 4,
            queue_capacity: 2,
            assignment: ShardAssignment::RoundRobin,
            ..Default::default()
        }
        .validate();
    }
}
