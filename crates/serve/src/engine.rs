//! The sharded serve engine: continuous batching over `SelectiveSession`s.
//!
//! `ServeEngine::run` owns the whole lifecycle of a request batch:
//!
//! 1. requests are admitted through a [`BoundedQueue`] (back-pressure);
//! 2. each of `shards` worker threads pulls requests, prefills them, and
//!    binds the session to a fresh [`KvTier`] namespace and a
//!    [`BlockCache`] drawing on the engine-wide [`CacheBudget`];
//! 3. every scheduler tick steps each ready session once through the
//!    shard's single [`SessionScratch`] (continuous batching: sessions at
//!    different depths coexist in one tick loop, finished sessions retire
//!    and free their slot for the next queued request);
//! 4. completions carry per-session stats; the report adds the tier-wide
//!    aggregate, queue high-water, and per-shard busy time.
//!
//! Scheduling never changes results: a token decoded here is bit-identical
//! to the same session run alone through `SelectiveSession::decode`
//! (locked down by `tests/serve_equivalence.rs`).
//!
//! ## Fault tolerance
//!
//! Per-request failure is a normal state, not an abort. Every recoverable
//! fault — a panicking session, an exhausted page pool, a blown deadline,
//! an admission shed — is contained to the session it hit: the session
//! becomes a [`Completion`] carrying a [`FailureCause`], its slot frees for
//! the next request, and every other session keeps its bit-identical
//! results (locked down by `tests/chaos.rs`). Only a config rejection fails
//! the whole run, as a typed `Err` from [`ServeEngine::run`]. A seeded
//! [`FaultPlan`] threaded through [`ServeConfig::faults`] provokes each
//! fault class deterministically at chosen points.

use crate::error::{FailureCause, RetryPolicy, ServeError};
use crate::faults::{FaultPlan, InjectedPanic};
use crate::queue::BoundedQueue;
use pqc_cache::{BlockCache, CacheBudget, CacheStats};
use pqc_core::{
    panic_message, ConfigError, SelectiveSession, SessionConfig, SessionResources, SessionScratch,
    StepError,
};
use pqc_llm::{Model, PrefillOutput};
use pqc_memhier::{
    KvTier, MemError, PrefixCacheStats, SharingStats, TransferStats, DEFAULT_PAGE_TOKENS,
};
use pqc_policies::{SelectionPolicy, SharedPolicyState};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How requests map onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardAssignment {
    /// One shared queue; whichever worker has a free slot first takes the
    /// request. Work-conserving — the right default for live traffic.
    #[default]
    FirstFree,
    /// Request `i` goes to shard `i mod shards` through per-shard queues.
    /// Deterministic placement and balance independent of OS scheduling —
    /// what benchmarks and placement-sensitive tests want (on a host with
    /// fewer cores than shards, first-free lets one timesliced worker
    /// drain the queue while the rest starve, which skews per-shard load).
    RoundRobin,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one shard of the session pool.
    pub shards: usize,
    /// Continuous-batching width: sessions decoded per shard per tick.
    pub max_active_per_shard: usize,
    /// Admission-queue bound across all shards (back-pressure on the
    /// producer). Round-robin splits it evenly over the per-shard queues,
    /// so it must be ≥ `shards` in that mode.
    pub queue_capacity: usize,
    /// Request→shard placement.
    pub assignment: ShardAssignment,
    /// Per-session engine configuration (segmentation, budgets, cache).
    pub session: SessionConfig,
    /// Sessions' worth of GPU cache backing the global [`CacheBudget`];
    /// `None` sizes it for the peak concurrency (`shards ×
    /// max_active_per_shard`), which reproduces standalone cache behaviour
    /// exactly. Smaller values exercise cross-session cache pressure.
    pub cache_budget_sessions: Option<usize>,
    /// Record per-step logits and selected-token sets in each completion
    /// (the equivalence battery's evidence; costs memory).
    pub record_trace: bool,
    /// Parallelise prefill across kv heads inside a worker. Off by default:
    /// shard workers are the parallelism axis, and nesting head threads
    /// under every worker oversubscribes the host.
    pub prefill_parallel: bool,
    /// Share host KV pages and trained PQ/IVF state across sessions whose
    /// prompts are identical (vLLM-style prefix caching on the paged tier).
    /// On by default — sharing is exact, so results are bit-identical to a
    /// cold start; turn off to model a fleet without prefix reuse.
    pub prefix_cache: bool,
    /// Host-tier page size in tokens (the paged `KvTier` granularity).
    pub page_tokens: usize,
    /// Deterministic fault-injection plan (chaos testing). `None` injects
    /// nothing; real faults flow through the same reporting paths either
    /// way.
    pub faults: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            max_active_per_shard: 4,
            queue_capacity: 16,
            assignment: ShardAssignment::FirstFree,
            session: SessionConfig::default(),
            cache_budget_sessions: None,
            record_trace: false,
            prefill_parallel: false,
            prefix_cache: true,
            page_tokens: DEFAULT_PAGE_TOKENS,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// Validate, returning the first offending field as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::new("shards", "need at least one shard"));
        }
        if self.max_active_per_shard == 0 {
            return Err(ConfigError::new(
                "max_active_per_shard",
                "need at least one session slot per shard",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "queue capacity must be positive"));
        }
        if self.page_tokens == 0 {
            return Err(ConfigError::new("page_tokens", "page size must be positive"));
        }
        if self.assignment == ShardAssignment::RoundRobin && self.queue_capacity < self.shards {
            return Err(ConfigError::new(
                "queue_capacity",
                "round-robin needs queue capacity >= shards (one slot per shard queue)",
            ));
        }
        if let Some(plan) = &self.faults {
            if plan.page_limit == Some(0) {
                return Err(ConfigError::new("faults", "page_limit 0 would reject every page"));
            }
        }
        self.session.validate()
    }

    /// [`Self::validate`], panicking on the first error — for call sites
    /// that treat a bad config as a programming bug.
    pub fn validate_strict(&self) {
        if let Err(e) = self.validate() {
            panic!("{}", e.message);
        }
    }

    /// Peak concurrent sessions the engine will run.
    pub fn peak_sessions(&self) -> usize {
        self.shards * self.max_active_per_shard
    }
}

/// One admission: a prompt plus how many tokens to decode greedily.
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the completion (must be unique).
    pub id: u64,
    /// Prompt tokens (must satisfy the session's segmentation minimum).
    pub tokens: Vec<u32>,
    /// Greedy decode steps to run after prefill.
    pub decode_steps: usize,
    /// Selection policy instance for this session.
    pub policy: Box<dyn SelectionPolicy + Send>,
    /// Optional deadline in scheduler ticks (the engine's deterministic
    /// clock): a session still decoding `deadline` ticks after admission is
    /// reaped with [`ServeError::DeadlineExceeded`]. `None` never expires.
    pub deadline: Option<u64>,
    /// Bounded-retry policy applied when admission rejects the request.
    pub retry: RetryPolicy,
}

impl ServeRequest {
    /// A request with no deadline and the default retry policy.
    pub fn new(
        id: u64,
        tokens: Vec<u32>,
        decode_steps: usize,
        policy: Box<dyn SelectionPolicy + Send>,
    ) -> Self {
        Self { id, tokens, decode_steps, policy, deadline: None, retry: RetryPolicy::default() }
    }

    /// Set a deadline in scheduler ticks.
    pub fn with_deadline(mut self, ticks: u64) -> Self {
        self.deadline = Some(ticks);
        self
    }

    /// Override the admission retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// What the first session to serve a prompt leaves behind in the tier's
/// prefix registry, alongside the refcounted KV pages: the deterministic
/// prefill output (logits, score captures) and the trained PQ/IVF policy
/// snapshot. Later sessions with the same prompt adopt all three and skip
/// prefill, offload, and clustering entirely.
struct SharedPrefix {
    prefill: PrefillOutput,
    policy: Option<SharedPolicyState>,
}

/// Per-step evidence captured when [`ServeConfig::record_trace`] is set.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// The step's classifier logits.
    pub logits: Vec<f32>,
    /// Selected middle tokens (absolute ids), `[layer][kv_head]`.
    pub selected: Vec<Vec<Vec<usize>>>,
}

/// A finished request — successfully decoded, or failed/shed with a typed
/// cause ([`Self::failure`]). Every admitted request produces exactly one.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request id.
    pub id: u64,
    /// Shard (worker) that served the session.
    pub shard: usize,
    /// Greedy-decoded tokens: `decode_steps` of them on success, however
    /// many the session managed before failing otherwise.
    pub generated: Vec<u32>,
    /// This session's host-transfer stats (its KvTier namespace).
    pub transfer: TransferStats,
    /// This session's GPU block-cache stats.
    pub cache: CacheStats,
    /// Prefix-sharing stats: prompt tokens adopted from the prefix cache
    /// and copy-on-write page copies this session triggered.
    pub sharing: SharingStats,
    /// Per-step trace (empty unless [`ServeConfig::record_trace`]).
    pub trace: Vec<StepTrace>,
    /// Why the session failed (`None` = clean completion).
    pub failure: Option<FailureCause>,
    /// Admission retries this request consumed before being served or shed.
    pub retries: u32,
}

impl Completion {
    /// True when the request decoded everything it asked for.
    pub fn is_success(&self) -> bool {
        self.failure.is_none()
    }
}

/// Per-shard scheduling statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Sessions admitted on this shard.
    pub admitted: u64,
    /// Sessions that failed or were shed on this shard.
    pub failed: u64,
    /// Decode tokens requested but never produced (shed at admission,
    /// reaped by deadline, or lost to a mid-decode fault).
    pub shed_tokens: u64,
    /// Session-steps skipped while the shard was stalled by an injected
    /// slow-shard fault (sessions held but not decoded that tick).
    pub degraded_steps: u64,
    /// Admission retries performed (re-attempts after a rejection).
    pub retries: u64,
    /// Wall time spent prefilling + decoding (excludes queue waits).
    /// Caveat: on a host with fewer cores than shards this includes time
    /// preempted by sibling workers — use a per-shard single-thread run
    /// (as `benches/serve_throughput.rs` does) to model one-core-per-shard
    /// occupancy.
    pub busy: Duration,
}

/// Everything `ServeEngine::run` produces.
#[derive(Debug)]
pub struct ServeReport {
    /// Completions, sorted by request id (failed ones carry
    /// [`Completion::failure`]).
    pub completions: Vec<Completion>,
    /// Tier-wide transfer aggregate (equals the sum of per-completion
    /// transfer stats — asserted by the equivalence battery).
    pub aggregate_transfer: TransferStats,
    /// Highest queue occupancy observed (≤ the configured bound).
    pub queue_high_water: usize,
    /// Prefix-cache registry counters (lookups, full/partial hits, entries).
    pub prefix: PrefixCacheStats,
    /// Tier-wide sharing aggregate (equals the sum of per-completion
    /// [`Completion::sharing`]).
    pub aggregate_sharing: SharingStats,
    /// Peak host-tier footprint over the run: distinct pages held at the
    /// busiest instant × page bytes. With prefix sharing on, a fleet of
    /// identical prompts peaks near O(unique tokens) instead of
    /// O(sessions × tokens).
    pub peak_host_bytes: u64,
    /// Per-shard scheduling stats.
    pub shards: Vec<ShardStats>,
    /// True if the shared cache budget ever observed a release/acquire
    /// imbalance (saturated instead of underflowing — a bug latch, not an
    /// abort).
    pub budget_underflow: bool,
    /// Worker threads that aborted outright instead of returning (always 0
    /// unless something escapes the per-session isolation; the engine
    /// absorbs the loss and still reports).
    pub worker_panics: u64,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl ServeReport {
    /// Total decoded tokens across completions.
    pub fn tokens_decoded(&self) -> u64 {
        self.completions.iter().map(|c| c.generated.len() as u64).sum()
    }

    /// The completion for a request id, if present.
    pub fn completion(&self, id: u64) -> Option<&Completion> {
        self.completions.iter().find(|c| c.id == id)
    }

    /// Completions that failed, with their causes.
    pub fn failures(&self) -> impl Iterator<Item = &Completion> {
        self.completions.iter().filter(|c| c.failure.is_some())
    }

    /// Completions that decoded everything they asked for.
    pub fn successes(&self) -> impl Iterator<Item = &Completion> {
        self.completions.iter().filter(|c| c.failure.is_none())
    }

    /// Total decode tokens requested but never produced.
    pub fn total_shed_tokens(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_tokens).sum()
    }

    /// Total session-steps lost to shard stalls.
    pub fn total_degraded_steps(&self) -> u64 {
        self.shards.iter().map(|s| s.degraded_steps).sum()
    }

    /// The busiest shard's occupied time — the modelled wall-clock of the
    /// run on a host with one core per shard (shards share nothing on the
    /// decode path, so their busy intervals overlap there).
    pub fn max_shard_busy(&self) -> Duration {
        self.shards.iter().map(|s| s.busy).max().unwrap_or(Duration::ZERO)
    }
}

/// An in-flight session on a shard.
struct Active<'m> {
    id: u64,
    session: SelectiveSession<'m>,
    next: u32,
    remaining: usize,
    generated: Vec<u32>,
    trace: Vec<StepTrace>,
    /// Per-shard tick at which the session was admitted (deadline base).
    admitted_tick: u64,
    deadline: Option<u64>,
    retries: u32,
}

/// A request waiting out its admission-retry backoff.
struct Waiting {
    req: ServeRequest,
    not_before: u64,
}

struct ShardOutput {
    completions: Vec<Completion>,
    stats: ShardStats,
}

/// The sharded multi-session serving engine. Stateless: each [`Self::run`]
/// call owns its workers, tier, and budget for the duration of the batch.
pub struct ServeEngine;

impl ServeEngine {
    /// Serve `requests` to completion and return the report.
    ///
    /// Blocks until every admitted request has finished. Request→shard
    /// assignment is first-free-worker (work conserving), which is safe
    /// because results are scheduling-independent.
    ///
    /// `Err` only on a rejected configuration; every per-request fault
    /// (panic, page exhaustion, deadline, shed) is reported as a failed
    /// [`Completion`] inside an `Ok` report instead.
    pub fn run(
        model: &Model,
        cfg: &ServeConfig,
        requests: Vec<ServeRequest>,
    ) -> Result<ServeReport, ServeError> {
        cfg.validate()?;
        let plan = cfg.faults.clone().unwrap_or_default();
        let mcfg = model.config();
        let tier = KvTier::with_page_limit(
            mcfg.n_layers,
            mcfg.n_kv_heads,
            mcfg.head_dim,
            cfg.page_tokens,
            None,
            plan.page_limit,
        );
        let budget_sessions = cfg.cache_budget_sessions.unwrap_or_else(|| cfg.peak_sessions());
        let budget = CacheBudget::for_tokens(
            cfg.session.cache.capacity_tokens * budget_sessions,
            cfg.session.cache.block_size,
        );
        // FirstFree: one shared queue. RoundRobin: one queue per shard,
        // splitting the global bound exactly (first `remainder` shards get
        // the extra slot, so per-shard capacities sum to queue_capacity).
        let queues: Vec<BoundedQueue<ServeRequest>> = match cfg.assignment {
            ShardAssignment::FirstFree => vec![BoundedQueue::new(cfg.queue_capacity)],
            ShardAssignment::RoundRobin => (0..cfg.shards)
                .map(|i| {
                    let base = cfg.queue_capacity / cfg.shards;
                    BoundedQueue::new(base + usize::from(i < cfg.queue_capacity % cfg.shards))
                })
                .collect(),
        };
        let start = Instant::now();

        let (mut completions, shard_stats, worker_panics) = std::thread::scope(|scope| {
            let plan = &plan;
            let handles: Vec<_> = (0..cfg.shards)
                .map(|shard| {
                    let queue = &queues[shard % queues.len()];
                    let tier = tier.clone();
                    let budget = budget.clone();
                    scope.spawn(move || Self::worker(model, cfg, plan, shard, queue, tier, budget))
                })
                .collect();

            // The caller's thread is the producer: bounded pushes are the
            // admission back-pressure. A bounced push (queue closed early —
            // cannot happen in this lifecycle, but stay total) sheds the
            // request instead of aborting the run.
            let mut completions = Vec::new();
            for (i, req) in requests.into_iter().enumerate() {
                if let Err(req) = queues[i % queues.len()].push(req) {
                    completions.push(Self::shed(
                        &req,
                        0,
                        ServeError::Admission { attempts: 0 },
                        false,
                        0,
                    ));
                }
            }
            for q in &queues {
                q.close();
            }

            let mut shard_stats = Vec::with_capacity(cfg.shards);
            let mut worker_panics = 0u64;
            for h in handles {
                match h.join() {
                    Ok(out) => {
                        completions.extend(out.completions);
                        shard_stats.push(out.stats);
                    }
                    Err(_) => {
                        // A worker died outside the per-session isolation.
                        // Absorb it: the other shards' completions and the
                        // report still come back.
                        worker_panics += 1;
                        shard_stats.push(ShardStats::default());
                    }
                }
            }
            (completions, shard_stats, worker_panics)
        });

        completions.sort_by_key(|c| c.id);
        Ok(ServeReport {
            completions,
            aggregate_transfer: tier.aggregate_stats(),
            prefix: tier.prefix_stats(),
            aggregate_sharing: tier.aggregate_sharing(),
            peak_host_bytes: tier.allocator().peak_resident_bytes(),
            // Sum of per-queue high waters: an upper bound on peak global
            // occupancy, itself bounded by the configured capacity.
            queue_high_water: queues.iter().map(BoundedQueue::high_water).sum(),
            shards: shard_stats,
            budget_underflow: budget.underflow_detected(),
            worker_panics,
            wall: start.elapsed(),
        })
    }

    fn worker<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        plan: &FaultPlan,
        shard: usize,
        queue: &BoundedQueue<ServeRequest>,
        tier: KvTier,
        budget: CacheBudget,
    ) -> ShardOutput {
        let mut scratch = SessionScratch::new();
        let mut active: Vec<Active<'m>> = Vec::new();
        let mut completions = Vec::new();
        let mut stats = ShardStats::default();
        // Injected-admission-reject bookkeeping: rejections consumed per
        // request, and requests waiting out their retry backoff.
        let mut rejected: HashMap<u64, u32> = HashMap::new();
        let mut waiting: Vec<Waiting> = Vec::new();
        let mut stall_remaining: u64 = 0;

        loop {
            // Admission: fill free slots — matured retries first, then the
            // queue. Block only when fully idle; a shard with live sessions
            // or pending retries keeps ticking while the queue is empty.
            let mut drained = false;
            while active.len() < cfg.max_active_per_shard {
                let req = if let Some(i) =
                    waiting.iter().position(|w| w.not_before <= stats.ticks)
                {
                    waiting.swap_remove(i).req
                } else if active.is_empty() && waiting.is_empty() {
                    match queue.pop_wait() {
                        Some(r) => r,
                        None => {
                            drained = true;
                            break;
                        }
                    }
                } else {
                    match queue.try_pop() {
                        Some(r) => r,
                        None => break,
                    }
                };

                // Injected queue-full burst: reject the attempt, retry per
                // the request's policy, shed when retries run out.
                let planned = plan.rejections(req.id);
                if planned > 0 {
                    let consumed = rejected.entry(req.id).or_insert(0);
                    if *consumed < planned {
                        *consumed += 1;
                        let attempts = *consumed;
                        if attempts > req.retry.max_retries {
                            stats.failed += 1;
                            stats.shed_tokens += req.decode_steps as u64;
                            completions.push(Self::shed(
                                &req,
                                shard,
                                ServeError::Admission { attempts },
                                true,
                                attempts.saturating_sub(1),
                            ));
                            continue;
                        }
                        stats.retries += 1;
                        let backoff = req.retry.backoff(plan.seed ^ req.id, attempts);
                        waiting.push(Waiting { req, not_before: stats.ticks + backoff });
                        continue;
                    }
                }

                let (id, decode_steps) = (req.id, req.decode_steps);
                let retries = rejected.get(&id).copied().unwrap_or(0);
                let t0 = Instant::now();
                match Self::try_admit(model, cfg, req, &tier, &budget, stats.ticks, retries) {
                    Ok(a) => {
                        active.push(a);
                        stats.admitted += 1;
                    }
                    Err(e) => {
                        // Prefill offload exhausted the page pool: shed this
                        // session, keep serving everyone else.
                        let injected = plan.page_limit.is_some()
                            && matches!(e, MemError::PageExhausted { .. });
                        stats.failed += 1;
                        stats.shed_tokens += decode_steps as u64;
                        completions.push(Completion {
                            id,
                            shard,
                            generated: Vec::new(),
                            transfer: TransferStats::default(),
                            cache: CacheStats::default(),
                            sharing: SharingStats::default(),
                            trace: Vec::new(),
                            failure: Some(FailureCause { error: e.into(), injected, step: 0 }),
                            retries,
                        });
                    }
                }
                stats.busy += t0.elapsed();
            }
            if drained && active.is_empty() && waiting.is_empty() {
                return ShardOutput { completions, stats };
            }
            Self::retire(&mut active, &mut completions, shard);
            if active.is_empty() {
                if waiting.is_empty() {
                    continue;
                }
                // Nothing to decode but retries pending: ticks are the
                // engine's clock, so burn one to let backoff elapse.
                stats.ticks += 1;
                continue;
            }

            // One scheduler tick: each ready session decodes one token
            // through the shard's shared scratch.
            let tick = stats.ticks;
            stats.ticks += 1;
            if stall_remaining == 0 {
                if let Some(t) = plan.stall_ticks(shard, tick) {
                    stall_remaining = t;
                }
            }
            // Deadlines are checked every tick — including stalled ones: a
            // stalled shard is exactly how deadlines get blown.
            Self::reap_deadlines(&mut active, &mut completions, shard, tick, &mut stats);
            if stall_remaining > 0 {
                // Injected slow shard: hold the sessions, skip the decode.
                stall_remaining -= 1;
                stats.degraded_steps += active.len() as u64;
                continue;
            }
            let t0 = Instant::now();
            let mut i = 0;
            while i < active.len() {
                let a = &mut active[i];
                let token = a.next;
                let inject = plan.panic_step(a.id).filter(|&s| s == a.session.steps());
                // The outer catch only ever sees the injected panic: it
                // fires before the step, so the shared scratch is never
                // mid-swap. Genuine step panics are contained (and scratch
                // restored) inside `try_step_with_scratch` itself.
                let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(at_step) = inject {
                        std::panic::panic_any(InjectedPanic { request_id: a.id, at_step });
                    }
                    a.session.try_step_with_scratch(token, &mut scratch)
                }));
                let (error, injected) = match stepped {
                    Ok(Ok(dec)) => {
                        a.generated.push(token);
                        if cfg.record_trace {
                            a.trace.push(StepTrace {
                                logits: dec.logits.clone(),
                                selected: a.session.selected_snapshot(),
                            });
                        }
                        a.next = dec.greedy();
                        a.remaining -= 1;
                        i += 1;
                        continue;
                    }
                    Ok(Err(StepError::Store(e))) => {
                        let injected = plan.page_limit.is_some()
                            && matches!(e, MemError::PageExhausted { .. });
                        (e.into(), injected)
                    }
                    Ok(Err(StepError::Poisoned { message })) => {
                        (ServeError::SessionPoisoned { message }, false)
                    }
                    Err(payload) => match payload.downcast::<InjectedPanic>() {
                        Ok(inj) => (inj.to_error(), true),
                        Err(other) => (
                            ServeError::SessionPoisoned { message: panic_message(other.as_ref()) },
                            false,
                        ),
                    },
                };
                let failed = active.swap_remove(i);
                stats.failed += 1;
                stats.shed_tokens += failed.remaining as u64;
                completions.push(Self::fail(failed, shard, error, injected));
            }
            stats.busy += t0.elapsed();
            Self::retire(&mut active, &mut completions, shard);
        }
    }

    /// Admit a request: bind a session to a fresh tier namespace and a
    /// budget-backed cache, prefilling (or adopting a shared prefix). `Err`
    /// when the host tier cannot hold the prompt — the caller sheds the
    /// request; it never aborts the worker.
    #[allow(clippy::too_many_arguments)]
    fn try_admit<'m>(
        model: &'m Model,
        cfg: &ServeConfig,
        req: ServeRequest,
        tier: &KvTier,
        budget: &CacheBudget,
        admitted_tick: u64,
        retries: u32,
    ) -> Result<Active<'m>, MemError> {
        let cache = || {
            BlockCache::with_budget(
                cfg.session.cache.capacity_tokens,
                cfg.session.cache.block_size,
                cfg.session.cache.policy(),
                budget.clone(),
            )
        };
        let activate = |start: pqc_core::SessionStart<'m>| Active {
            id: req.id,
            next: pqc_tensor::argmax(&start.logits) as u32,
            session: start.session,
            remaining: req.decode_steps,
            generated: Vec::with_capacity(req.decode_steps),
            trace: Vec::new(),
            admitted_tick,
            deadline: req.deadline,
            retries,
        };

        // Prefix-cache fast path: an identical prompt already served means
        // the pages, prefill output, and trained policy state are all in
        // the tier — adopt them instead of recomputing. Only a full-prompt
        // hit qualifies; a partial hit would still need a partial prefill,
        // which the dense model here cannot resume mid-prompt.
        if cfg.prefix_cache {
            if let Some(hit) = tier.lookup_prefix(&req.tokens) {
                if hit.len() == req.tokens.len() {
                    if let Some(shared) = hit.payload().downcast_ref::<SharedPrefix>() {
                        let resources = SessionResources {
                            store: tier.new_namespace_with_prefix(&hit),
                            cache: cache(),
                        };
                        let start = SelectiveSession::try_start_from_shared_prefix(
                            model,
                            req.policy,
                            cfg.session,
                            &shared.prefill,
                            resources,
                            shared.policy.as_ref(),
                        )?;
                        return Ok(activate(start));
                    }
                }
            }
        }

        let mut opts = SelectiveSession::prefill_options(&cfg.session, req.tokens.len());
        opts.parallel = cfg.prefill_parallel;
        let prefill = model.prefill(&req.tokens, &opts);
        let resources = SessionResources { store: tier.new_namespace(), cache: cache() };
        let start = SelectiveSession::try_start_from_prefill_in(
            model,
            req.policy,
            cfg.session,
            &prefill,
            resources,
        )?;
        if cfg.prefix_cache {
            // First server of this prompt donates its pages + policy state.
            // Racing registrants are benign: first wins, the loser just
            // keeps its private copy.
            let payload =
                Arc::new(SharedPrefix { policy: start.session.export_policy_state(), prefill });
            let _ = tier.register_prefix(&req.tokens, start.session.store(), payload);
        }
        Ok(activate(start))
    }

    /// A completion for a request shed before it ever got a session.
    fn shed(
        req: &ServeRequest,
        shard: usize,
        error: ServeError,
        injected: bool,
        retries: u32,
    ) -> Completion {
        Completion {
            id: req.id,
            shard,
            generated: Vec::new(),
            transfer: TransferStats::default(),
            cache: CacheStats::default(),
            sharing: SharingStats::default(),
            trace: Vec::new(),
            failure: Some(FailureCause { error, injected, step: 0 }),
            retries,
        }
    }

    /// A completion for a session that failed mid-flight: partial output
    /// and real per-session stats, plus the classified cause.
    fn fail(a: Active<'_>, shard: usize, error: ServeError, injected: bool) -> Completion {
        let step = a.session.steps();
        Completion {
            id: a.id,
            shard,
            generated: a.generated,
            transfer: a.session.transfer_stats(),
            cache: a.session.cache_stats(),
            sharing: a.session.sharing_stats(),
            trace: a.trace,
            failure: Some(FailureCause { error, injected, step }),
            retries: a.retries,
        }
    }

    /// Reap sessions whose deadline elapsed (tick-based, deterministic).
    fn reap_deadlines(
        active: &mut Vec<Active<'_>>,
        completions: &mut Vec<Completion>,
        shard: usize,
        tick: u64,
        stats: &mut ShardStats,
    ) {
        let mut i = 0;
        while i < active.len() {
            let elapsed = tick - active[i].admitted_tick;
            let expired =
                active[i].remaining > 0 && active[i].deadline.is_some_and(|d| elapsed >= d);
            if expired {
                let a = active.swap_remove(i);
                let deadline_ticks = a.deadline.unwrap_or(0);
                stats.failed += 1;
                stats.shed_tokens += a.remaining as u64;
                completions.push(Self::fail(
                    a,
                    shard,
                    ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks: elapsed },
                    false,
                ));
            } else {
                i += 1;
            }
        }
    }

    fn retire(active: &mut Vec<Active<'_>>, completions: &mut Vec<Completion>, shard: usize) {
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining == 0 {
                let a = active.swap_remove(i);
                completions.push(Completion {
                    id: a.id,
                    shard,
                    generated: a.generated,
                    transfer: a.session.transfer_stats(),
                    cache: a.session.cache_stats(),
                    sharing: a.session.sharing_stats(),
                    trace: a.trace,
                    failure: None,
                    retries: a.retries,
                });
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_llm::LlmConfig;
    use pqc_policies::PqCachePolicy;

    fn session_cfg() -> SessionConfig {
        SessionConfig {
            n_init: 2,
            n_local: 8,
            token_ratio: 0.25,
            comm_fraction: 1.0 / 16.0,
            obs_window: 8,
            cache: pqc_core::CacheConfig {
                capacity_tokens: 64,
                block_size: 8,
                lfu: true,
                k_cache_blocks: 4,
            },
            ivf: pqc_core::IvfMode::Exact,
        }
    }

    fn prompt(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = pqc_tensor::Rng64::new(seed);
        (0..n).map(|_| rng.below(200) as u32).collect()
    }

    fn requests(n: usize) -> Vec<ServeRequest> {
        (0..n)
            .map(|i| {
                ServeRequest::new(
                    i as u64,
                    prompt(48 + 8 * (i % 3), 100 + i as u64),
                    4 + i % 3,
                    Box::new(PqCachePolicy::default()),
                )
            })
            .collect()
    }

    #[test]
    fn serves_all_requests_to_completion() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 3,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(7)).unwrap();
        assert_eq!(report.completions.len(), 7);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.id, i as u64);
            assert_eq!(c.generated.len(), 4 + i % 3);
            assert!(c.shard < 2);
            assert!(c.is_success());
            assert_eq!(c.retries, 0);
        }
        assert!(report.queue_high_water <= 3);
        let sum: TransferStats = report.completions.iter().map(|c| c.transfer).sum();
        assert_eq!(report.aggregate_transfer, sum);
        assert_eq!(report.tokens_decoded(), (0..7).map(|i| 4 + (i % 3) as u64).sum());
        assert_eq!(report.failures().count(), 0);
        assert!(!report.budget_underflow);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.total_shed_tokens(), 0);
    }

    #[test]
    fn zero_step_request_completes_without_decoding() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 2,
            session: session_cfg(),
            ..Default::default()
        };
        let reqs =
            vec![ServeRequest::new(9, prompt(48, 5), 0, Box::new(PqCachePolicy::default()))];
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        assert_eq!(report.completions.len(), 1);
        assert!(report.completions[0].generated.is_empty());
        // Prefill offload is still metered.
        assert!(report.completions[0].transfer.d2h_bytes > 0);
    }

    #[test]
    fn single_shard_report_is_deterministic() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            record_trace: true,
            ..Default::default()
        };
        let a = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        let b = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        for (ca, cb) in a.completions.iter().zip(b.completions.iter()) {
            assert_eq!(ca.generated, cb.generated);
            assert_eq!(ca.trace, cb.trace);
            assert_eq!(ca.transfer, cb.transfer);
        }
    }

    #[test]
    fn round_robin_places_deterministically() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            assignment: ShardAssignment::RoundRobin,
            session: session_cfg(),
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
        assert_eq!(report.completions.len(), 6);
        for c in &report.completions {
            assert_eq!(c.shard, (c.id % 2) as usize, "request {} misplaced", c.id);
        }
        // Balanced placement ⇒ both shards admitted equally.
        assert!(report.shards.iter().all(|s| s.admitted == 3));
        // And results match the first-free schedule bit-for-bit.
        let ff = ServeEngine::run(
            &model,
            &ServeConfig { assignment: ShardAssignment::FirstFree, ..cfg },
            requests(6),
        )
        .unwrap();
        for (a, b) in report.completions.iter().zip(ff.completions.iter()) {
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn ivf_probe_all_cells_serves_bit_identically() {
        // ServeConfig.session.ivf = Probe(n_list) reaches every admitted
        // session's policy: the full-probe fleet must reproduce the
        // exact-mode fleet's traces bit for bit (routing is transparent at
        // n_probe = n_list), sharing one IVF scratch per shard.
        let model = Model::new(LlmConfig::tiny());
        let n_list = pqc_policies::PqCachePolicyConfig::default().ivf_n_list;
        let run = |ivf| {
            let cfg = ServeConfig {
                shards: 2,
                max_active_per_shard: 2,
                queue_capacity: 4,
                session: SessionConfig { ivf, ..session_cfg() },
                record_trace: true,
                ..Default::default()
            };
            ServeEngine::run(&model, &cfg, requests(5)).unwrap()
        };
        let exact = run(pqc_core::IvfMode::Exact);
        let probe = run(pqc_core::IvfMode::Probe(n_list));
        assert_eq!(exact.completions.len(), probe.completions.len());
        for (a, b) in exact.completions.iter().zip(probe.completions.iter()) {
            assert_eq!(a.generated, b.generated, "request {} tokens diverged", a.id);
            assert_eq!(a.trace, b.trace, "request {} trace diverged", a.id);
            assert_eq!(a.transfer, b.transfer, "request {} transfers diverged", a.id);
        }
    }

    #[test]
    fn ivf_narrow_probe_fleet_completes() {
        // A genuinely sublinear fleet (probe 2 of 16 cells) must run to
        // completion under continuous batching.
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 2,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: SessionConfig { ivf: pqc_core::IvfMode::Probe(2), ..session_cfg() },
            ..Default::default()
        };
        let report = ServeEngine::run(&model, &cfg, requests(6)).unwrap();
        assert_eq!(report.completions.len(), 6);
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.generated.len(), 4 + i % 3);
        }
    }

    #[test]
    fn prefix_cache_shares_pages_across_identical_prompts() {
        // One shard, sequential admission, four identical prompts: the
        // first session registers the prefix, the other three adopt it.
        let model = Model::new(LlmConfig::tiny());
        let toks = prompt(64, 7);
        let reqs = || {
            (0..4)
                .map(|i| {
                    ServeRequest::new(
                        i as u64,
                        toks.clone(),
                        5,
                        Box::new(PqCachePolicy::default()) as _,
                    )
                })
                .collect::<Vec<_>>()
        };
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let shared = ServeEngine::run(&model, &cfg, reqs()).unwrap();
        assert_eq!(shared.completions.len(), 4);
        assert_eq!(shared.prefix.lookups, 4);
        assert_eq!(shared.prefix.full_hits, 3);
        assert_eq!(shared.prefix.entries, 1);
        assert_eq!(shared.aggregate_sharing.prefix_hit_tokens, 3 * toks.len() as u64);
        // Everyone decodes the same continuation...
        for c in &shared.completions[1..] {
            assert_eq!(c.generated, shared.completions[0].generated);
            // ...and adopters skip the offload the cold session paid.
            assert!(c.sharing.prefix_hit_tokens == toks.len() as u64);
            assert!(c.transfer.d2h_bytes < shared.completions[0].transfer.d2h_bytes);
        }
        // Sharing off: same tokens, four full offloads, bigger host peak.
        let cold =
            ServeEngine::run(&model, &ServeConfig { prefix_cache: false, ..cfg }, reqs()).unwrap();
        assert_eq!(cold.prefix.lookups, 0);
        assert_eq!(cold.aggregate_sharing, SharingStats::default());
        for (a, b) in shared.completions.iter().zip(cold.completions.iter()) {
            assert_eq!(a.generated, b.generated, "prefix sharing changed results");
        }
        assert!(
            shared.peak_host_bytes < cold.peak_host_bytes,
            "sharing must shrink the host peak: {} vs {}",
            shared.peak_host_bytes,
            cold.peak_host_bytes
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let model = Model::new(LlmConfig::tiny());
        let bad = ServeConfig { shards: 0, ..Default::default() };
        let err = bad.validate().unwrap_err();
        assert_eq!(err.field, "shards");
        match ServeEngine::run(&model, &bad, Vec::new()) {
            Err(ServeError::Config(e)) => assert_eq!(e.field, "shards"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ServeConfig { shards: 0, ..Default::default() }.validate_strict();
    }

    #[test]
    #[should_panic(expected = "queue capacity >= shards")]
    fn round_robin_needs_queue_slots() {
        ServeConfig {
            shards: 4,
            queue_capacity: 2,
            assignment: ShardAssignment::RoundRobin,
            ..Default::default()
        }
        .validate_strict();
    }

    #[test]
    fn injected_panic_fails_one_session_and_spares_the_rest() {
        let model = Model::new(LlmConfig::tiny());
        let clean_cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let clean = ServeEngine::run(&model, &clean_cfg, requests(5)).unwrap();
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(11).with_session_panic(2, 1)),
            ..clean_cfg
        };
        let report = ServeEngine::run(&model, &cfg, requests(5)).unwrap();
        assert_eq!(report.completions.len(), 5, "every request still completes");
        let failed = report.completion(2).unwrap();
        let cause = failed.failure.as_ref().expect("request 2 must fail");
        assert!(cause.injected);
        assert_eq!(cause.error.class(), "session_poisoned");
        assert_eq!(failed.generated.len(), 1, "one step decoded before the injected panic");
        // Survivors are bit-identical to the fault-free run.
        for id in [0u64, 1, 3, 4] {
            let a = clean.completion(id).unwrap();
            let b = report.completion(id).unwrap();
            assert!(b.is_success());
            assert_eq!(a.generated, b.generated, "survivor {id} diverged");
        }
        assert_eq!(report.shards[0].failed, 1);
        assert!(report.total_shed_tokens() > 0);
    }

    #[test]
    fn deadline_reaps_slow_session() {
        let model = Model::new(LlmConfig::tiny());
        let cfg = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        let mut reqs = requests(2);
        reqs[0].decode_steps = 50;
        reqs[0].deadline = Some(3);
        let report = ServeEngine::run(&model, &cfg, reqs).unwrap();
        let reaped = report.completion(0).unwrap();
        let cause = reaped.failure.as_ref().expect("deadline must reap request 0");
        match &cause.error {
            ServeError::DeadlineExceeded { deadline_ticks, elapsed_ticks } => {
                assert_eq!(*deadline_ticks, 3);
                assert!(*elapsed_ticks >= 3);
            }
            other => panic!("unexpected cause {other:?}"),
        }
        assert!(reaped.generated.len() < 50);
        assert!(report.completion(1).unwrap().is_success());
    }

    #[test]
    fn admission_rejects_retry_then_succeed_or_shed() {
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 2,
            queue_capacity: 4,
            session: session_cfg(),
            ..Default::default()
        };
        // Two rejections, default policy allows two retries: admitted on
        // the third attempt.
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(3).with_admission_rejects(1, 2)),
            ..base.clone()
        };
        let report = ServeEngine::run(&model, &cfg, requests(3)).unwrap();
        let retried = report.completion(1).unwrap();
        assert!(retried.is_success(), "should admit after retries: {:?}", retried.failure);
        assert_eq!(retried.retries, 2);
        assert_eq!(report.shards[0].retries, 2);
        // Rejections exceeding the retry budget shed the request.
        let cfg = ServeConfig {
            faults: Some(FaultPlan::seeded(3).with_admission_rejects(1, 10)),
            ..base
        };
        let report = ServeEngine::run(&model, &cfg, requests(3)).unwrap();
        let shed = report.completion(1).unwrap();
        let cause = shed.failure.as_ref().expect("request 1 must be shed");
        assert!(cause.injected);
        match cause.error {
            ServeError::Admission { attempts } => assert_eq!(attempts, 3),
            ref other => panic!("unexpected cause {other:?}"),
        }
        assert!(report.completion(0).unwrap().is_success());
        assert!(report.completion(2).unwrap().is_success());
    }

    #[test]
    fn shard_stall_degrades_without_changing_results() {
        let model = Model::new(LlmConfig::tiny());
        let base = ServeConfig {
            shards: 1,
            max_active_per_shard: 4,
            queue_capacity: 8,
            session: session_cfg(),
            ..Default::default()
        };
        let clean = ServeEngine::run(&model, &base, requests(4)).unwrap();
        let cfg =
            ServeConfig { faults: Some(FaultPlan::seeded(5).with_stall(0, 1, 3)), ..base };
        let stalled = ServeEngine::run(&model, &cfg, requests(4)).unwrap();
        assert!(stalled.total_degraded_steps() > 0, "stall must meter degraded steps");
        assert_eq!(clean.completions.len(), stalled.completions.len());
        for (a, b) in clean.completions.iter().zip(stalled.completions.iter()) {
            assert!(b.is_success());
            assert_eq!(a.generated, b.generated, "stall changed request {} output", a.id);
        }
        // Note: tick totals are NOT compared across the two runs — the
        // clean run's idle-tick count depends on producer/worker timing.
        // The degraded-steps meter above is the deterministic evidence.
    }
}
