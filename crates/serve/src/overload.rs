//! Brownout overload control: adaptive pressure detection with graceful
//! quality degradation.
//!
//! The engine's whole substrate is a tunable quality/compute knob — PQ
//! selective attention trades recall for scan work through the selection
//! budget `k` and the IVF probe width — yet before this module the only
//! overload lever was to *shed*: drop whole requests while every survivor
//! decoded at full effort. A brownout controller inverts that: detect
//! pressure, dial effort down on degradable traffic within an explicit
//! recall floor, defer what can wait, and only shed at the very top of the
//! ladder. Actions reverse in order as pressure clears.
//!
//! ## The ladder
//!
//! A composite pressure score in `[0, 1]` — the **max** of queue depth,
//! slot occupancy, page-pool occupancy, rolling deadline-miss rate, and
//! rolling TTFT-vs-SLO violations (weakest-link semantics: any one
//! saturated resource is pressure) — is mapped through hysteresis onto
//! four [`PressureLevel`]s:
//!
//! | level       | Low/Normal effort        | Low admissions | checkpoints |
//! |-------------|--------------------------|----------------|-------------|
//! | `Nominal`   | full                     | admit          | base cadence|
//! | `Elevated`  | `effort[0]` (mild)       | admit          | base cadence|
//! | `Saturated` | `effort[1]`              | **defer**      | stretched   |
//! | `Critical`  | `effort[2]` (floor)      | **shed**       | stretched   |
//!
//! High-priority sessions are *never* degraded — the brownout exists to
//! protect them. The ladder moves **one rung per decision** and only after
//! `dwell_up`/`dwell_down` consecutive qualifying ticks, with exit
//! thresholds strictly below enter thresholds, so the controller never
//! flaps between levels on a noisy boundary tick.
//!
//! ## Determinism
//!
//! Every decision runs on the scheduler's tick clock over deterministic
//! inputs (queue lengths, slot counts, completion counters); the only
//! randomness — deferral jitter — is seeded per `(seed, request, tick)`.
//! A storm under a fault plan therefore replays bit-identically, and a
//! **disabled** controller (`ServeConfig::overload = None`) is
//! bit-identical to an engine built without this module: no effort calls
//! are made and no degraded code path is evaluated.

use crate::engine::Priority;
use pqc_core::{ConfigError, SelectionEffort};
use pqc_tensor::Rng64;
use std::collections::VecDeque;

/// Overload pressure level — the brownout ladder. Ordered: degradation
/// strictly increases with the level, and recovery walks back down the
/// same rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PressureLevel {
    /// No degradation; the controller only watches.
    #[default]
    Nominal,
    /// Mild effort reduction on Low/Normal traffic.
    Elevated,
    /// Deeper effort reduction; Low admissions are deferred (not
    /// rejected) and the checkpoint cadence stretches.
    Saturated,
    /// Effort at the configured floor; Low admissions fall back to the
    /// pre-brownout shed path (bounded retry, then typed `Admission`).
    Critical,
}

impl PressureLevel {
    /// Number of rungs.
    pub const COUNT: usize = 4;

    /// All levels, lowest first.
    pub const ALL: [PressureLevel; Self::COUNT] =
        [Self::Nominal, Self::Elevated, Self::Saturated, Self::Critical];

    /// Rung index: `Nominal` = 0 … `Critical` = 3.
    pub fn index(self) -> usize {
        self as usize
    }

    /// One rung up (saturating at `Critical`).
    fn up(self) -> Self {
        Self::ALL[(self.index() + 1).min(Self::COUNT - 1)]
    }

    /// One rung down (saturating at `Nominal`).
    fn down(self) -> Self {
        Self::ALL[self.index().saturating_sub(1)]
    }
}

impl std::fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Nominal => "nominal",
            Self::Elevated => "elevated",
            Self::Saturated => "saturated",
            Self::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// Brownout controller configuration (`ServeConfig::overload`).
///
/// Thresholds index the rung being *entered*: `enter[0]`/`exit[0]` govern
/// `Nominal ⇄ Elevated`, `[1]` `Elevated ⇄ Saturated`, `[2]`
/// `Saturated ⇄ Critical`. `exit[i] < enter[i]` is required — the gap is
/// the hysteresis band.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Pressure at or above which the ladder arms a step **up** into rung
    /// `i + 1` (after `dwell_up` consecutive qualifying ticks).
    pub enter: [f64; 3],
    /// Pressure strictly below which the ladder arms a step **down** out
    /// of rung `i + 1` (after `dwell_down` consecutive qualifying ticks).
    pub exit: [f64; 3],
    /// Consecutive qualifying ticks before a step up. ≥ 1.
    pub dwell_up: u64,
    /// Consecutive qualifying ticks before a step down. ≥ 1. Typically
    /// larger than `dwell_up`: escalate fast, relax carefully.
    pub dwell_down: u64,
    /// Rolling window (ticks) for the deadline-miss and TTFT-vs-SLO
    /// rates. ≥ 1.
    pub window_ticks: usize,
    /// TTFT target in scheduler ticks feeding the pressure signal: a
    /// completion whose `ttft_ticks` exceeds this counts as an SLO
    /// violation in the window.
    pub ttft_slo_ticks: u64,
    /// Selection effort applied to Low/Normal sessions at
    /// `Elevated`/`Saturated`/`Critical` (index = rung − 1). Each entry
    /// must respect the floors below, and effort must be non-increasing
    /// up the ladder so actions reverse in order as pressure clears.
    pub effort: [SelectionEffort; 3],
    /// Floor on every effort's `k_frac` — the recall floor expressed as a
    /// budget fraction. In `(0, 1]`.
    pub min_k_frac: f64,
    /// Floor on every effort's IVF probe cap. ≥ 1.
    pub min_n_probe: usize,
    /// The empirical recall@k floor (vs the exact path) the effort ladder
    /// was validated against at maximum degradation; `tests/overload.rs`
    /// re-measures it. In `(0, 1]`.
    pub recall_floor: f64,
    /// Base Low-admission deferral at `Saturated`, in ticks. ≥ 1.
    pub defer_ticks: u64,
    /// Max seeded jitter added to a deferral (0 = none); spreads matured
    /// re-admissions so a deferred cohort does not stampede one tick.
    pub defer_jitter: u64,
    /// Checkpoint-cadence multiplier at `Saturated` and above. ≥ 1.
    pub checkpoint_stretch: u64,
    /// Seed for deferral jitter; all other decisions are seedless
    /// deterministic functions of tick-clock state.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            enter: [0.55, 0.75, 0.92],
            exit: [0.40, 0.60, 0.80],
            dwell_up: 2,
            dwell_down: 4,
            window_ticks: 32,
            ttft_slo_ticks: 16,
            effort: [
                SelectionEffort { k_frac: 0.5, max_n_probe: Some(8) },
                SelectionEffort { k_frac: 0.25, max_n_probe: Some(4) },
                SelectionEffort { k_frac: 0.15, max_n_probe: Some(4) },
            ],
            min_k_frac: 0.1,
            min_n_probe: 4,
            recall_floor: 0.5,
            defer_ticks: 4,
            defer_jitter: 2,
            checkpoint_stretch: 4,
            seed: 0xB0B0,
        }
    }
}

impl OverloadConfig {
    /// Validate, returning a typed error on nonsensical settings —
    /// including effort-floor consistency: every rung's effort must sit
    /// at or above the configured recall floor's knobs.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for i in 0..3 {
            if !(self.enter[i] > 0.0 && self.enter[i] <= 1.0) {
                return Err(ConfigError::new("overload.enter", "enter thresholds must be in (0, 1]"));
            }
            if !(self.exit[i] >= 0.0 && self.exit[i] < self.enter[i]) {
                return Err(ConfigError::new(
                    "overload.exit",
                    format!(
                        "exit[{i}] = {} must be in [0, enter[{i}] = {}) — the gap is the \
                         hysteresis band",
                        self.exit[i], self.enter[i]
                    ),
                ));
            }
        }
        if self.enter.windows(2).any(|w| w[0] > w[1]) {
            return Err(ConfigError::new("overload.enter", "enter thresholds must be ascending"));
        }
        if self.dwell_up == 0 || self.dwell_down == 0 {
            return Err(ConfigError::new("overload.dwell", "dwell ticks must be at least 1"));
        }
        if self.window_ticks == 0 {
            return Err(ConfigError::new("overload.window_ticks", "rolling window needs >= 1 tick"));
        }
        if !(self.min_k_frac > 0.0 && self.min_k_frac <= 1.0) {
            return Err(ConfigError::new("overload.min_k_frac", "min_k_frac must be in (0, 1]"));
        }
        if self.min_n_probe == 0 {
            return Err(ConfigError::new("overload.min_n_probe", "min_n_probe must be >= 1"));
        }
        if !(self.recall_floor > 0.0 && self.recall_floor <= 1.0) {
            return Err(ConfigError::new("overload.recall_floor", "recall_floor must be in (0, 1]"));
        }
        for (i, e) in self.effort.iter().enumerate() {
            if !(e.k_frac > 0.0 && e.k_frac <= 1.0) {
                return Err(ConfigError::new("overload.effort", "k_frac must be in (0, 1]"));
            }
            if e.k_frac < self.min_k_frac {
                return Err(ConfigError::new(
                    "overload.effort",
                    format!(
                        "effort[{i}].k_frac = {} sits below the recall floor's min_k_frac = {}",
                        e.k_frac, self.min_k_frac
                    ),
                ));
            }
            if let Some(cap) = e.max_n_probe {
                if cap < self.min_n_probe {
                    return Err(ConfigError::new(
                        "overload.effort",
                        format!(
                            "effort[{i}].max_n_probe = {cap} sits below the recall floor's \
                             min_n_probe = {}",
                            self.min_n_probe
                        ),
                    ));
                }
            }
        }
        if self.effort.windows(2).any(|w| w[1].k_frac > w[0].k_frac) {
            return Err(ConfigError::new(
                "overload.effort",
                "effort must be non-increasing up the ladder (actions reverse in order)",
            ));
        }
        if self.defer_ticks == 0 {
            return Err(ConfigError::new("overload.defer_ticks", "deferral must be >= 1 tick"));
        }
        if self.checkpoint_stretch == 0 {
            return Err(ConfigError::new(
                "overload.checkpoint_stretch",
                "checkpoint stretch must be >= 1 (1 = no stretch)",
            ));
        }
        Ok(())
    }
}

/// One tick's pressure inputs, computed by the shard worker from its own
/// deterministic state. Occupancy fields are fractions in `[0, 1]`;
/// counter fields are *increments since the previous observation*.
#[derive(Debug, Clone, Copy, Default)]
pub struct PressureSample {
    /// Admission-queue depth over capacity.
    pub queue_frac: f64,
    /// Resident sessions (active + prefilling) over the slot count.
    pub slot_frac: f64,
    /// Page-pool occupancy (0 when the pool is uncapped).
    pub pool_frac: f64,
    /// Completions finished since the last observation.
    pub done: u32,
    /// Of `done`, how many failed on a deadline.
    pub missed: u32,
    /// Of `done`, how many recorded a first token later than the TTFT
    /// SLO (`OverloadConfig::ttft_slo_ticks`) on the tick clock.
    pub ttft_over: u32,
}

/// The per-shard brownout controller: feed it one [`PressureSample`] per
/// tick, read the [`PressureLevel`] and the per-priority effort back.
///
/// One instance per shard worker — pressure is a shard-local quantity
/// (each shard owns its queue, slots, and sessions), and shard-local
/// state is what keeps control decisions free of cross-thread races.
#[derive(Debug)]
pub struct OverloadController {
    cfg: OverloadConfig,
    level: PressureLevel,
    /// Consecutive ticks qualifying for a step up / down.
    above: u64,
    below: u64,
    /// Rolling `(done, missed, ttft_over)` increments, newest last.
    window: VecDeque<(u32, u32, u32)>,
    /// Running sums over `window`.
    done_sum: u64,
    missed_sum: u64,
    over_sum: u64,
    /// Last composite score, for introspection/tests.
    score: f64,
}

impl OverloadController {
    /// A controller at `Nominal` with an empty window. The configuration
    /// must already be validated (`ServeConfig::validate` does).
    pub fn new(cfg: OverloadConfig) -> Self {
        let window = VecDeque::with_capacity(cfg.window_ticks);
        Self {
            cfg,
            level: PressureLevel::Nominal,
            above: 0,
            below: 0,
            window,
            done_sum: 0,
            missed_sum: 0,
            over_sum: 0,
            score: 0.0,
        }
    }

    /// Current rung.
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// Last composite pressure score.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The configuration in effect.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Ingest one tick's sample and return the (possibly stepped) level.
    ///
    /// Must be called on **every** scheduler tick, including idle ticks —
    /// pressure decay is what re-admits deferred work, so skipping idle
    /// ticks would deadlock a shard whose only remaining work is
    /// deferred. The ladder moves at most one rung per call.
    pub fn observe(&mut self, s: &PressureSample) -> PressureLevel {
        // Rolling miss / TTFT-violation rates over the last window_ticks.
        if self.window.len() == self.cfg.window_ticks {
            let (d, m, o) = self.window.pop_front().expect("non-empty window");
            self.done_sum -= u64::from(d);
            self.missed_sum -= u64::from(m);
            self.over_sum -= u64::from(o);
        }
        self.window.push_back((s.done, s.missed, s.ttft_over));
        self.done_sum += u64::from(s.done);
        self.missed_sum += u64::from(s.missed);
        self.over_sum += u64::from(s.ttft_over);
        let miss_frac =
            if self.done_sum == 0 { 0.0 } else { self.missed_sum as f64 / self.done_sum as f64 };
        let ttft_frac =
            if self.done_sum == 0 { 0.0 } else { self.over_sum as f64 / self.done_sum as f64 };

        // Weakest link: any one saturated resource is pressure.
        self.score = s
            .queue_frac
            .max(s.slot_frac)
            .max(s.pool_frac)
            .max(miss_frac)
            .max(ttft_frac)
            .clamp(0.0, 1.0);

        // Hysteresis: arm up/down against the thresholds of the adjacent
        // rung, step only after the dwell, one rung at a time.
        let li = self.level.index();
        let arm_up = li < PressureLevel::COUNT - 1 && self.score >= self.cfg.enter[li];
        let arm_down = li > 0 && self.score < self.cfg.exit[li - 1];
        self.above = if arm_up { self.above + 1 } else { 0 };
        self.below = if arm_down { self.below + 1 } else { 0 };
        if self.above >= self.cfg.dwell_up {
            self.level = self.level.up();
            self.above = 0;
            self.below = 0;
        } else if self.below >= self.cfg.dwell_down {
            self.level = self.level.down();
            self.above = 0;
            self.below = 0;
        }
        self.level
    }

    /// Selection effort for a session of the given priority at the
    /// current level. High priority is never degraded; that is the point.
    pub fn effort_for(&self, priority: Priority) -> SelectionEffort {
        if priority == Priority::High || self.level == PressureLevel::Nominal {
            return SelectionEffort::full();
        }
        self.cfg.effort[self.level.index() - 1]
    }

    /// Whether a Low-priority admission should be **deferred** right now
    /// (pushed back to the maturity queue without consuming a retry).
    pub fn defers_low_admission(&self) -> bool {
        self.level == PressureLevel::Saturated
    }

    /// Whether a Low-priority admission should fall back to the shed
    /// path (bounded retry, then a typed `Admission` failure).
    pub fn sheds_low_admission(&self) -> bool {
        self.level == PressureLevel::Critical
    }

    /// Deferral length in ticks for a Low admission at `tick`: the
    /// configured base plus seeded jitter keyed on `(seed, request,
    /// tick)` — deterministic for replay, spread so a deferred cohort
    /// matures staggered instead of stampeding one tick.
    pub fn defer_delay(&self, req_id: u64, tick: u64) -> u64 {
        let jitter = if self.cfg.defer_jitter == 0 {
            0
        } else {
            let mut rng = Rng64::new(
                self.cfg.seed ^ req_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tick,
            );
            rng.below(self.cfg.defer_jitter as usize + 1) as u64
        };
        (self.cfg.defer_ticks + jitter).max(1)
    }

    /// Checkpoint cadence under pressure: stretched at `Saturated` and
    /// above (checkpoint I/O is deferrable work), untouched below.
    pub fn checkpoint_every(&self, base: u64) -> u64 {
        if self.level >= PressureLevel::Saturated {
            base.saturating_mul(self.cfg.checkpoint_stretch).max(1)
        } else {
            base
        }
    }

    /// Seed for controller-driven retry backoff (the Critical shed path),
    /// kept distinct from the deferral-jitter stream.
    pub fn seed(&self) -> u64 {
        self.cfg.seed ^ 0x0B0E_D10A_D5ED_u64
    }
}

/// Aggregated brownout metering across shards (`ServeReport::overload`).
/// All-zero when the controller is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadSummary {
    /// Scheduler ticks spent at each rung, summed over shards (indexed by
    /// `PressureLevel::index`). Ticks are only attributed while a
    /// controller is running, so a disabled controller leaves all four
    /// counts zero (including `Nominal`).
    pub level_ticks: [u64; PressureLevel::COUNT],
    /// Decode tokens produced under non-full effort.
    pub degraded_tokens: u64,
    /// Low admissions deferred at `Saturated` (each deferral counts).
    pub deferrals: u64,
    /// Requests shed by the controller at `Critical` (excludes fault-plan
    /// and deadline sheds).
    pub sheds: u64,
}

impl OverloadSummary {
    /// Ticks spent at or above `Elevated`.
    pub fn pressured_ticks(&self) -> u64 {
        self.level_ticks[1..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(score: f64) -> PressureSample {
        PressureSample { queue_frac: score, ..Default::default() }
    }

    #[test]
    fn default_config_is_valid() {
        OverloadConfig::default().validate().expect("default must validate");
    }

    #[test]
    fn ladder_is_ordered_and_indexed() {
        use PressureLevel::*;
        assert!(Nominal < Elevated && Elevated < Saturated && Saturated < Critical);
        for (i, l) in PressureLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        assert_eq!(Critical.up(), Critical, "ladder saturates at the top");
        assert_eq!(Nominal.down(), Nominal, "ladder saturates at the bottom");
        assert_eq!(PressureLevel::default(), Nominal);
    }

    #[test]
    fn escalation_climbs_one_rung_per_dwell() {
        let cfg = OverloadConfig { dwell_up: 2, ..Default::default() };
        let mut c = OverloadController::new(cfg);
        // Saturation pressure: without per-rung dwell the ladder would
        // jump straight to Critical. It must climb a rung per 2 ticks.
        let mut seen = vec![c.level()];
        for _ in 0..6 {
            seen.push(c.observe(&sample(1.0)));
        }
        use PressureLevel::*;
        assert_eq!(
            seen,
            vec![Nominal, Nominal, Elevated, Elevated, Saturated, Saturated, Critical]
        );
        // Steady pressure holds the top without wrapping or flapping.
        assert_eq!(c.observe(&sample(1.0)), Critical);
    }

    #[test]
    fn recovery_descends_in_order_after_dwell_down() {
        let cfg = OverloadConfig { dwell_up: 1, dwell_down: 3, ..Default::default() };
        let mut c = OverloadController::new(cfg);
        while c.level() != PressureLevel::Critical {
            c.observe(&sample(1.0));
        }
        // Pressure clears: three quiet ticks per rung, strictly in order.
        let mut seen = Vec::new();
        for _ in 0..9 {
            seen.push(c.observe(&sample(0.0)));
        }
        use PressureLevel::*;
        assert_eq!(
            seen,
            vec![
                Critical, Critical, Saturated, Saturated, Saturated, Elevated, Elevated,
                Elevated, Nominal
            ]
        );
    }

    #[test]
    fn hysteresis_band_never_flaps() {
        // A score inside the Elevated band (>= exit[0], < enter[0]) must
        // hold the current level forever from either side.
        let cfg = OverloadConfig::default();
        let band = (cfg.exit[0] + cfg.enter[0]) / 2.0;
        let mut from_below = OverloadController::new(cfg.clone());
        for _ in 0..50 {
            assert_eq!(from_below.observe(&sample(band)), PressureLevel::Nominal);
        }
        let mut from_above = OverloadController::new(cfg);
        while from_above.level() != PressureLevel::Elevated {
            from_above.observe(&sample(1.0));
        }
        for _ in 0..50 {
            assert_eq!(from_above.observe(&sample(band)), PressureLevel::Elevated);
        }
    }

    #[test]
    fn interrupted_dwell_resets_the_count() {
        let cfg = OverloadConfig { dwell_up: 3, ..Default::default() };
        let mut c = OverloadController::new(cfg);
        // Two hot ticks, one cool tick, repeatedly: never escalates.
        for _ in 0..10 {
            assert_eq!(c.observe(&sample(1.0)), PressureLevel::Nominal);
            assert_eq!(c.observe(&sample(1.0)), PressureLevel::Nominal);
            assert_eq!(c.observe(&sample(0.0)), PressureLevel::Nominal);
        }
    }

    #[test]
    fn high_priority_is_never_degraded() {
        let mut c = OverloadController::new(OverloadConfig::default());
        for _ in 0..20 {
            c.observe(&sample(1.0));
        }
        assert_eq!(c.level(), PressureLevel::Critical);
        assert!(c.effort_for(Priority::High).is_full());
        assert!(!c.effort_for(Priority::Normal).is_full());
        assert!(!c.effort_for(Priority::Low).is_full());
    }

    #[test]
    fn efforts_respect_floors_and_reverse_in_order() {
        let cfg = OverloadConfig::default();
        let mut c = OverloadController::new(cfg.clone());
        let mut prev_k = 1.0f64;
        for want in [PressureLevel::Elevated, PressureLevel::Saturated, PressureLevel::Critical] {
            while c.level() != want {
                c.observe(&sample(1.0));
            }
            let e = c.effort_for(Priority::Low);
            assert!(e.k_frac >= cfg.min_k_frac, "{want}: k_frac below floor");
            assert!(
                e.max_n_probe.unwrap_or(usize::MAX) >= cfg.min_n_probe,
                "{want}: probe cap below floor"
            );
            assert!(e.k_frac <= prev_k, "{want}: effort must not grow up the ladder");
            prev_k = e.k_frac;
        }
    }

    #[test]
    fn admission_actions_follow_the_ladder() {
        let mut c = OverloadController::new(OverloadConfig { dwell_up: 1, ..Default::default() });
        assert!(!c.defers_low_admission() && !c.sheds_low_admission());
        c.observe(&sample(1.0)); // Elevated
        assert!(!c.defers_low_admission() && !c.sheds_low_admission());
        c.observe(&sample(1.0)); // Saturated
        assert!(c.defers_low_admission() && !c.sheds_low_admission());
        c.observe(&sample(1.0)); // Critical
        assert!(!c.defers_low_admission() && c.sheds_low_admission());
    }

    #[test]
    fn deadline_misses_and_ttft_are_rolling_rates() {
        // 100% miss rate saturates pressure even with empty queues; once
        // the misses age out of the window, pressure decays to zero.
        let cfg = OverloadConfig { window_ticks: 4, dwell_up: 1, ..Default::default() };
        let mut c = OverloadController::new(cfg);
        c.observe(&PressureSample { done: 4, missed: 4, ..Default::default() });
        assert!(c.score() >= 1.0 - 1e-12, "all-missed window must saturate: {}", c.score());
        assert_eq!(c.level(), PressureLevel::Elevated);
        for _ in 0..4 {
            c.observe(&PressureSample::default());
        }
        assert_eq!(c.score(), 0.0, "aged-out misses must stop pressuring");
        // TTFT violations pressure the same way.
        let mut c2 = OverloadController::new(OverloadConfig {
            window_ticks: 4,
            dwell_up: 1,
            ..Default::default()
        });
        c2.observe(&PressureSample { done: 2, ttft_over: 2, ..Default::default() });
        assert!(c2.score() >= 1.0 - 1e-12);
    }

    #[test]
    fn defer_delay_is_seeded_and_bounded() {
        let cfg = OverloadConfig { defer_ticks: 4, defer_jitter: 2, ..Default::default() };
        let c = OverloadController::new(cfg.clone());
        for req in 0..32u64 {
            for tick in [0u64, 7, 1000] {
                let d = c.defer_delay(req, tick);
                assert!(
                    (cfg.defer_ticks..=cfg.defer_ticks + cfg.defer_jitter).contains(&d),
                    "delay {d} outside [{}, {}]",
                    cfg.defer_ticks,
                    cfg.defer_ticks + cfg.defer_jitter
                );
                assert_eq!(d, c.defer_delay(req, tick), "jitter must replay");
            }
        }
        // The jitter stream actually spreads.
        let spread: std::collections::HashSet<u64> =
            (0..32u64).map(|r| c.defer_delay(r, 3)).collect();
        assert!(spread.len() > 1, "jitter never varies");
    }

    #[test]
    fn checkpoint_cadence_stretches_at_saturated_and_above() {
        let mut c = OverloadController::new(OverloadConfig {
            dwell_up: 1,
            checkpoint_stretch: 4,
            ..Default::default()
        });
        assert_eq!(c.checkpoint_every(2), 2);
        c.observe(&sample(1.0)); // Elevated
        assert_eq!(c.checkpoint_every(2), 2, "Elevated must not stretch yet");
        c.observe(&sample(1.0)); // Saturated
        assert_eq!(c.checkpoint_every(2), 8);
        c.observe(&sample(1.0)); // Critical
        assert_eq!(c.checkpoint_every(2), 8);
    }

    #[test]
    fn invalid_configs_yield_typed_errors() {
        let bad_exit = OverloadConfig { exit: [0.6, 0.6, 0.8], ..Default::default() };
        assert_eq!(bad_exit.validate().unwrap_err().field, "overload.exit");
        let bad_dwell = OverloadConfig { dwell_up: 0, ..Default::default() };
        assert_eq!(bad_dwell.validate().unwrap_err().field, "overload.dwell");
        let below_floor = OverloadConfig {
            effort: [
                SelectionEffort { k_frac: 0.05, max_n_probe: None },
                SelectionEffort { k_frac: 0.05, max_n_probe: None },
                SelectionEffort { k_frac: 0.05, max_n_probe: None },
            ],
            ..Default::default()
        };
        assert_eq!(below_floor.validate().unwrap_err().field, "overload.effort");
        let probe_below_floor = OverloadConfig {
            effort: [
                SelectionEffort { k_frac: 0.5, max_n_probe: Some(1) },
                SelectionEffort { k_frac: 0.5, max_n_probe: Some(1) },
                SelectionEffort { k_frac: 0.5, max_n_probe: Some(1) },
            ],
            min_n_probe: 2,
            ..Default::default()
        };
        assert_eq!(probe_below_floor.validate().unwrap_err().field, "overload.effort");
        let growing = OverloadConfig {
            effort: [
                SelectionEffort { k_frac: 0.2, max_n_probe: None },
                SelectionEffort { k_frac: 0.9, max_n_probe: None },
                SelectionEffort { k_frac: 0.2, max_n_probe: None },
            ],
            ..Default::default()
        };
        assert_eq!(growing.validate().unwrap_err().field, "overload.effort");
        let no_stretch = OverloadConfig { checkpoint_stretch: 0, ..Default::default() };
        assert_eq!(no_stretch.validate().unwrap_err().field, "overload.checkpoint_stretch");
    }

    #[test]
    fn observe_is_deterministic() {
        let run = || {
            let mut c = OverloadController::new(OverloadConfig::default());
            let mut levels = Vec::new();
            for i in 0..200u64 {
                // A deterministic sawtooth of pressure.
                let score = ((i % 17) as f64 / 16.0).clamp(0.0, 1.0);
                levels.push(c.observe(&PressureSample {
                    queue_frac: score,
                    slot_frac: score * 0.7,
                    done: (i % 3) as u32,
                    missed: u32::from(i % 9 == 0),
                    ..Default::default()
                }));
            }
            levels
        };
        assert_eq!(run(), run(), "same samples must replay the same ladder");
    }
}
