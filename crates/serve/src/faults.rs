//! Deterministic fault injection for chaos testing the serve engine.
//!
//! A [`FaultPlan`] is a declarative, seeded schedule of failures threaded
//! through [`ServeConfig`](crate::ServeConfig): the engine consults it at
//! well-defined points (admission, tick start, per-session step) and
//! injects the planned fault there. Because every injection point is keyed
//! on deterministic state — request ids, per-session step counts, per-shard
//! tick counts — a plan replays identically run over run, which is what
//! lets `tests/chaos.rs` assert exact failure causes and bit-identical
//! surviving logits.
//!
//! Real faults (a genuinely exhausted page pool, a real panic) flow through
//! the same reporting paths; the plan only *provokes* them early and
//! predictably.

use crate::error::ServeError;

/// Panic a chosen session at a chosen decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionPanic {
    /// The request to poison.
    pub request_id: u64,
    /// Decode step (0-based) at which the panic fires, before the step runs.
    pub at_step: u64,
}

/// Stall one shard for a number of ticks: the shard consumes scheduler
/// ticks without stepping its sessions (a slow-worker / GC-pause stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStall {
    /// Shard to stall.
    pub shard: usize,
    /// Tick (0-based, per-shard) at which the stall begins.
    pub at_tick: u64,
    /// How many ticks the stall lasts.
    pub ticks: u64,
}

/// Reject a request at admission a number of times (queue-full burst /
/// transient overload stand-in). The request retries per its
/// [`RetryPolicy`](crate::RetryPolicy) and is shed when retries run out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionReject {
    /// The request to reject.
    pub request_id: u64,
    /// How many consecutive admission attempts to reject.
    pub rejections: u32,
}

/// Kill a worker thread outright at a chosen tick: the whole shard dies
/// mid-run (a host crash / OOM-kill stand-in, not a per-session fault).
/// Checkpointed sessions on the shard fail over to healthy shards; the
/// rest are lost with [`ServeError::ShardLost`](crate::ServeError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Shard whose worker dies.
    pub shard: usize,
    /// Tick (0-based, per-shard) at whose boundary the worker panics.
    pub at_tick: u64,
}

/// Flip one bit in a session's host-resident middle KV store at a chosen
/// decode step (silent data corruption — a DRAM/PCIe fault stand-in). The
/// per-page checksum catches it on the next fetch of the damaged slot, so
/// the corrupt bytes are never served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// The request whose store is damaged.
    pub request_id: u64,
    /// Decode step (0-based) right before which the flip lands.
    pub at_step: u64,
    /// Which bit flips: selects the f32 element and the mantissa/exponent
    /// bit deterministically (see `HostKvStore::corrupt_slot`).
    pub bit: u64,
}

/// A deterministic, seeded schedule of injected faults.
///
/// `Default` is the empty plan (no faults). The `seed` feeds retry-backoff
/// jitter so two runs of the same plan schedule retries identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every piece of injected randomness (backoff jitter).
    pub seed: u64,
    /// Cap the engine's host KV tier at this many pages (allocator
    /// exhaustion under load; `None` leaves the tier unbounded).
    pub page_limit: Option<usize>,
    /// Sessions to panic at chosen steps.
    pub session_panics: Vec<SessionPanic>,
    /// Shard stalls.
    pub stalls: Vec<ShardStall>,
    /// Admission rejections.
    pub admission_rejects: Vec<AdmissionReject>,
    /// Worker kills (whole-shard crashes).
    pub worker_kills: Vec<WorkerKill>,
    /// KV bit flips (silent store corruption).
    pub bit_flips: Vec<BitFlip>,
}

impl FaultPlan {
    /// An empty plan with a seed (faults are added via the builder methods).
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Cap the host tier's page pool.
    pub fn with_page_limit(mut self, pages: usize) -> Self {
        self.page_limit = Some(pages);
        self
    }

    /// Panic `request_id` right before its `at_step`-th decode step.
    pub fn with_session_panic(mut self, request_id: u64, at_step: u64) -> Self {
        self.session_panics.push(SessionPanic { request_id, at_step });
        self
    }

    /// Stall `shard` for `ticks` ticks starting at its `at_tick`-th tick.
    pub fn with_stall(mut self, shard: usize, at_tick: u64, ticks: u64) -> Self {
        self.stalls.push(ShardStall { shard, at_tick, ticks });
        self
    }

    /// Reject `request_id` at admission `rejections` times in a row.
    pub fn with_admission_rejects(mut self, request_id: u64, rejections: u32) -> Self {
        self.admission_rejects.push(AdmissionReject { request_id, rejections });
        self
    }

    /// Kill `shard`'s worker at the boundary of its `at_tick`-th tick.
    pub fn with_worker_kill(mut self, shard: usize, at_tick: u64) -> Self {
        self.worker_kills.push(WorkerKill { shard, at_tick });
        self
    }

    /// Flip `bit` in `request_id`'s middle store right before its
    /// `at_step`-th decode step.
    pub fn with_bit_flip(mut self, request_id: u64, at_step: u64, bit: u64) -> Self {
        self.bit_flips.push(BitFlip { request_id, at_step, bit });
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.page_limit.is_none()
            && self.session_panics.is_empty()
            && self.stalls.is_empty()
            && self.admission_rejects.is_empty()
            && self.worker_kills.is_empty()
            && self.bit_flips.is_empty()
    }

    /// The step at which `request_id` should panic, if planned.
    pub fn panic_step(&self, request_id: u64) -> Option<u64> {
        self.session_panics.iter().find(|p| p.request_id == request_id).map(|p| p.at_step)
    }

    /// Stall length for `shard` beginning at `tick`, if planned.
    pub fn stall_ticks(&self, shard: usize, tick: u64) -> Option<u64> {
        self.stalls
            .iter()
            .find(|s| s.shard == shard && s.at_tick == tick)
            .map(|s| s.ticks)
    }

    /// True when `shard`'s worker is planned to die at `tick`'s boundary.
    pub fn kill_at(&self, shard: usize, tick: u64) -> bool {
        self.worker_kills.iter().any(|k| k.shard == shard && k.at_tick == tick)
    }

    /// The bit to flip in `request_id`'s store right before `step`, if
    /// planned. Fires by exact step match; the engine guards against
    /// re-firing when a rollback replays the same step.
    pub fn bit_flip_at(&self, request_id: u64, step: u64) -> Option<u64> {
        self.bit_flips
            .iter()
            .find(|b| b.request_id == request_id && b.at_step == step)
            .map(|b| b.bit)
    }

    /// Planned admission rejections for `request_id` (0 = admit normally).
    pub fn rejections(&self, request_id: u64) -> u32 {
        self.admission_rejects
            .iter()
            .find(|r| r.request_id == request_id)
            .map_or(0, |r| r.rejections)
    }
}

/// The typed payload injected session panics carry, so the engine (and the
/// chaos battery) can tell an *injected* panic apart from a genuine one and
/// recover the planned step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The poisoned request.
    pub request_id: u64,
    /// The step the plan fired at.
    pub at_step: u64,
}

impl InjectedPanic {
    /// The failure this injection maps to in the report.
    pub fn to_error(&self) -> ServeError {
        ServeError::SessionPoisoned {
            message: format!(
                "injected panic: request {} at step {}",
                self.request_id, self.at_step
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_lookups_resolve() {
        let plan = FaultPlan::seeded(7)
            .with_page_limit(64)
            .with_session_panic(3, 5)
            .with_stall(1, 10, 4)
            .with_admission_rejects(9, 2)
            .with_worker_kill(1, 12)
            .with_bit_flip(6, 3, 41);
        assert!(!plan.is_empty());
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.page_limit, Some(64));
        assert_eq!(plan.panic_step(3), Some(5));
        assert_eq!(plan.panic_step(4), None);
        assert_eq!(plan.stall_ticks(1, 10), Some(4));
        assert_eq!(plan.stall_ticks(1, 11), None);
        assert_eq!(plan.stall_ticks(0, 10), None);
        assert_eq!(plan.rejections(9), 2);
        assert_eq!(plan.rejections(8), 0);
        assert!(plan.kill_at(1, 12));
        assert!(!plan.kill_at(1, 13));
        assert!(!plan.kill_at(0, 12));
        assert_eq!(plan.bit_flip_at(6, 3), Some(41));
        assert_eq!(plan.bit_flip_at(6, 4), None);
        assert_eq!(plan.bit_flip_at(5, 3), None);
    }

    #[test]
    fn kill_and_flip_alone_make_a_nonempty_plan() {
        assert!(!FaultPlan::seeded(1).with_worker_kill(0, 5).is_empty());
        assert!(!FaultPlan::seeded(1).with_bit_flip(0, 1, 2).is_empty());
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(FaultPlan::seeded(99).is_empty());
    }

    #[test]
    fn injected_panic_maps_to_poisoned_error() {
        let inj = InjectedPanic { request_id: 12, at_step: 4 };
        match inj.to_error() {
            ServeError::SessionPoisoned { message } => {
                assert!(message.contains("request 12"));
                assert!(message.contains("step 4"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
