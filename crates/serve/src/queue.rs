//! Bounded multi-producer multi-consumer admission queue.
//!
//! Built on `std::sync::{Mutex, Condvar}` (matching the workspace's
//! crossbeam-free threading style). The bound is the serving layer's
//! back-pressure: a producer pushing into a full queue blocks until a
//! worker drains a slot, so request bursts never balloon memory. The queue
//! records its high-water mark so tests can assert the bound held.
//!
//! Locking is **poison-tolerant**: every acquisition recovers the guard via
//! [`PoisonError::into_inner`]. The queue's invariants (a `VecDeque`, a
//! flag, a counter) hold after any partial critical section, so a worker
//! that panicked while holding the lock must not cascade into
//! `.expect("queue lock")` panics in every other shard.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded FIFO shared between the admission side and shard workers.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(State { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire the state lock, recovering from poison: the queue's
    /// invariants survive any interrupted critical section.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the item
    /// back if the queue was closed before a slot freed up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                st.high_water = st.high_water.max(st.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.lock();
        let item = st.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Remove the item maximising `key`; the **earliest** such item wins
    /// ties, so a constant key degrades to exact FIFO ([`Self::try_pop`]).
    fn pop_max<K: Ord>(st: &mut State<T>, key: &impl Fn(&T) -> K) -> Option<T> {
        if st.items.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..st.items.len() {
            if key(&st.items[i]) > key(&st.items[best]) {
                best = i;
            }
        }
        st.items.remove(best)
    }

    /// Dequeue the highest-`key` item without blocking (FIFO within a key
    /// class) — the serving layer's priority-aware admission pop.
    pub fn try_pop_max_by_key<K: Ord>(&self, key: impl Fn(&T) -> K) -> Option<T> {
        let mut st = self.lock();
        let item = Self::pop_max(&mut st, &key);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeue the highest-`key` item, blocking until one arrives. Returns
    /// `None` only when the queue is closed *and* drained.
    pub fn pop_wait_max_by_key<K: Ord>(&self, key: impl Fn(&T) -> K) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = Self::pop_max(&mut st, &key) {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The largest `key` among queued items — lets a full shard decide
    /// whether a queued arrival outranks a running session *before*
    /// committing to a preemption.
    pub fn max_key<K: Ord>(&self, key: impl Fn(&T) -> K) -> Option<K> {
        self.lock().items.iter().map(key).max()
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only when
    /// the queue is closed *and* drained — the worker shutdown signal.
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: already-queued items still drain, new pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Maximum queue length ever observed (≤ capacity by construction).
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.high_water(), 5);
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.push(2), Err(2));
    }

    #[test]
    fn bound_blocks_producer_until_consumed() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32).unwrap();
        q.push(1).unwrap();
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer below pops.
            qp.push(2).unwrap();
            qp.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop_wait() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(q.high_water() <= 2);
    }

    #[test]
    fn close_while_producers_blocked_drains_and_unblocks() {
        // Producers blocked on a full queue must wake on close, get their
        // items back as Err, and consumers must still drain exactly the
        // items that made it in — no deadlock, no loss, no duplication.
        let q = Arc::new(BoundedQueue::new(2));
        q.push(100u32).unwrap();
        q.push(101).unwrap();
        let producers: Vec<_> = (0..3)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(200 + i))
            })
            .collect();
        // Give the producers time to park on the full queue (close must
        // wake them whether or not they reached the wait yet).
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        let mut bounced = 0;
        for p in producers {
            match p.join().unwrap() {
                Ok(()) => panic!("push into a closed full queue must fail"),
                Err(v) => {
                    assert!((200..203).contains(&v));
                    bounced += 1;
                }
            }
        }
        assert_eq!(bounced, 3, "every blocked producer must get its item back");
        // The queued items still drain after close.
        assert_eq!(q.pop_wait(), Some(100));
        assert_eq!(q.pop_wait(), Some(101));
        assert_eq!(q.pop_wait(), None, "drained + closed signals shutdown");
        assert!(q.is_empty());
    }

    #[test]
    fn poisoned_lock_does_not_cascade() {
        // A consumer that panics while holding the queue lock poisons the
        // std Mutex; every later operation must recover and keep working.
        let q = Arc::new(BoundedQueue::new(4));
        q.push(1u32).unwrap();
        let qp = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = qp.state.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert!(q.state.is_poisoned(), "test setup: lock must be poisoned");
        q.push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.high_water(), 2);
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn priority_pop_is_max_first_fifo_within_class() {
        let q = BoundedQueue::new(8);
        // (priority, arrival order)
        for item in [(1u8, 0u32), (2, 1), (1, 2), (2, 3), (3, 4)] {
            q.push(item).unwrap();
        }
        assert_eq!(q.max_key(|&(p, _)| p), Some(3));
        let order: Vec<(u8, u32)> =
            std::iter::from_fn(|| q.try_pop_max_by_key(|&(p, _)| p)).collect();
        // Highest priority first; equal priorities keep arrival order.
        assert_eq!(order, vec![(3, 4), (2, 1), (2, 3), (1, 0), (1, 2)]);
        assert_eq!(q.max_key(|&(p, _)| p), None);
    }

    #[test]
    fn constant_key_degrades_to_fifo() {
        let q = BoundedQueue::new(8);
        for i in 0..5u32 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop_max_by_key(|_| 0u8), Some(i));
        }
    }

    #[test]
    fn pop_wait_max_drains_then_signals_close() {
        let q = BoundedQueue::new(4);
        q.push((1u8, 'a')).unwrap();
        q.push((2, 'b')).unwrap();
        q.close();
        assert_eq!(q.pop_wait_max_by_key(|&(p, _)| p), Some((2, 'b')));
        assert_eq!(q.pop_wait_max_by_key(|&(p, _)| p), Some((1, 'a')));
        assert_eq!(q.pop_wait_max_by_key(|&(p, _)| p), None);
    }

    #[test]
    fn many_consumers_each_item_once() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop_wait() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..50u32 {
            q.push(i).unwrap();
        }
        q.close();
        let mut all: Vec<u32> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
