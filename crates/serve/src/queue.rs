//! Bounded multi-producer multi-consumer admission queue.
//!
//! Built on `std::sync::{Mutex, Condvar}` (matching the workspace's
//! crossbeam-free threading style). The bound is the serving layer's
//! back-pressure: a producer pushing into a full queue blocks until a
//! worker drains a slot, so request bursts never balloon memory. The queue
//! records its high-water mark so tests can assert the bound held.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded FIFO shared between the admission side and shard workers.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(State { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the item
    /// back if the queue was closed before a slot freed up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                st.high_water = st.high_water.max(st.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).expect("queue wait");
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        let item = st.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeue, blocking until an item arrives. Returns `None` only when
    /// the queue is closed *and* drained — the worker shutdown signal.
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue wait");
        }
    }

    /// Close the queue: already-queued items still drain, new pushes fail,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Maximum queue length ever observed (≤ capacity by construction).
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.high_water(), 5);
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_signals() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.push(2), Err(2));
    }

    #[test]
    fn bound_blocks_producer_until_consumed() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32).unwrap();
        q.push(1).unwrap();
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer below pops.
            qp.push(2).unwrap();
            qp.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop_wait() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(q.high_water() <= 2);
    }

    #[test]
    fn many_consumers_each_item_once() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop_wait() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..50u32 {
            q.push(i).unwrap();
        }
        q.close();
        let mut all: Vec<u32> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
