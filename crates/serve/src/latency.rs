//! Per-request latency accounting: TTFT / TPOT percentile summaries.
//!
//! The serving layer measures two clocks per request. **Wall** latency runs
//! from batch arrival (every request in a [`ServeEngine::run`] batch
//! arrives at the run's epoch) to the event — it includes queue wait and
//! head-of-line blocking, which is exactly what an SLO sees. **Tick**
//! latency runs on the engine's deterministic per-shard scheduler clock
//! from admission — reproducible run over run, so tests can assert on it.
//!
//! [`ServeEngine::run`]: crate::ServeEngine::run

/// Order statistics over one latency metric.
///
/// Percentiles use the nearest-rank method (`p(q) = sorted[⌈q·n⌉ - 1]`):
/// deterministic, no interpolation, and the reported value is always a real
/// sample. All fields are 0 when no samples exist.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Samples summarised.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Summarise `samples` (order irrelevant). Every edge case is total:
    /// an empty slice yields the all-zero default, a single sample is its
    /// own p50/p95/p99/max, and NaN samples are dropped rather than
    /// panicking or propagating — a latency summary must never take the
    /// report down, whatever a failed clock read fed it.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| !s.is_nan()).collect();
        if sorted.is_empty() {
            return Self::default();
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
        let n = sorted.len();
        let rank = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Self {
            count: n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: sorted[n - 1],
        }
    }
}

/// The run-level latency summary carried by
/// [`ServeReport`](crate::ServeReport): TTFT on both clocks plus TPOT.
///
/// Only requests that produced a first token contribute to the TTFT
/// metrics; only requests that decoded at least one token contribute to
/// TPOT. Shed or mid-prefill-reaped requests never skew the tail.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Time-to-first-token in wall seconds, from batch arrival (includes
    /// queue wait and prefill — head-of-line blocking shows up here).
    pub ttft_wall: Percentiles,
    /// Time-to-first-token in scheduler ticks, from admission (the
    /// deterministic clock; monolithic prefill is a single admission event
    /// and scores 0 ticks, chunked prefill scores its chunk count).
    pub ttft_ticks: Percentiles,
    /// Time-per-output-token in wall seconds: mean inter-token decode time
    /// of each request, summarised across requests.
    pub tpot_wall: Percentiles,
}

impl LatencySummary {
    /// Build from the per-metric sample vectors the engine collects.
    pub fn new(ttft_wall: &[f64], ttft_ticks: &[f64], tpot_wall: &[f64]) -> Self {
        Self {
            ttft_wall: Percentiles::from_samples(ttft_wall),
            ttft_ticks: Percentiles::from_samples(ttft_ticks),
            tpot_wall: Percentiles::from_samples(tpot_wall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_all_zero() {
        let p = Percentiles::from_samples(&[]);
        assert_eq!(p, Percentiles::default());
        assert_eq!(p.count, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = Percentiles::from_samples(&[3.5]);
        assert_eq!(p.count, 1);
        assert_eq!((p.mean, p.p50, p.p95, p.p99, p.max), (3.5, 3.5, 3.5, 3.5, 3.5));
    }

    #[test]
    fn single_sample_percentiles_are_finite_and_consistent() {
        // Degenerate distributions must stay well-defined: no NaN leaks
        // out of any field, and the order p50 <= p95 <= p99 <= max holds.
        for v in [0.0, 1e-12, 7.25] {
            let p = Percentiles::from_samples(&[v]);
            for x in [p.mean, p.p50, p.p95, p.p99, p.max] {
                assert!(x.is_finite(), "sample {v} produced non-finite {x}");
            }
            assert!(p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max);
        }
    }

    #[test]
    fn nan_samples_are_dropped_not_propagated() {
        let p = Percentiles::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(p.count, 2, "NaN must not be counted");
        assert_eq!(p.p50, 1.0);
        assert_eq!(p.max, 3.0);
        assert!(p.mean.is_finite());
        // All-NaN degrades to the empty default, not a panic.
        assert_eq!(Percentiles::from_samples(&[f64::NAN]), Percentiles::default());
    }

    #[test]
    fn nearest_rank_on_a_hundred_samples() {
        // 1.0..=100.0: nearest-rank pXX is exactly the XXth value.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&samples);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = Percentiles::from_samples(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        let b = Percentiles::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 3.0);
        assert_eq!(a.p99, 5.0, "p99 of 5 samples is the max by nearest rank");
    }

    #[test]
    fn tail_is_pulled_by_outliers_median_is_not() {
        // 99 fast requests + 1 straggler: p50 stays fast, p99/max catch it.
        let mut samples = vec![0.01; 99];
        samples.push(10.0);
        let p = Percentiles::from_samples(&samples);
        assert_eq!(p.p50, 0.01);
        assert_eq!(p.p99, 0.01, "rank 99 of 100 is still fast");
        assert_eq!(p.max, 10.0);
        assert!(p.mean > 0.1, "the straggler must move the mean");
    }

    #[test]
    fn summary_wires_each_metric_independently() {
        let s = LatencySummary::new(&[1.0, 2.0], &[4.0], &[]);
        assert_eq!(s.ttft_wall.count, 2);
        assert_eq!(s.ttft_ticks.p50, 4.0);
        assert_eq!(s.tpot_wall, Percentiles::default());
    }
}
