//! # pqc-serve
//!
//! Multi-session serving layer over the PQCache engine.
//!
//! The paper's decode loop (Algorithm 2, `pqc_core::SelectiveSession`) is
//! per-request; production traffic is many concurrent sessions sharing the
//! host KV tier, the GPU cache budget, and the CPU cores. [`ServeEngine`]
//! closes that gap with **sharding** (one worker thread per shard of the
//! session pool) and **continuous batching** (each scheduler tick drives
//! one decode step per ready session, admitting queued requests as slots
//! free), while reusing one set of hot-path buffers per shard
//! (`SessionScratch`) instead of per session.
//!
//! Shared resources are explicitly multi-tenant:
//! - the host KV tier is a paged [`pqc_memhier::KvTier`]: one namespace per
//!   session (offsets are namespace-local) over a tier-global refcounted
//!   page pool, with engine-wide aggregate transfer accounting;
//! - identical prompts share pages *and* trained PQ/IVF state through the
//!   tier's prefix registry ([`ServeConfig::prefix_cache`], on by default):
//!   the first session to serve a prompt donates its page tables, prefill
//!   output, and policy snapshot; later sessions adopt them copy-on-write
//!   and skip prefill, offload, and clustering — bit-identically;
//! - GPU cache capacity is a [`pqc_cache::CacheBudget`] shared by every
//!   session's shard-local [`pqc_cache::BlockCache`].
//!
//! Scheduling is SLO-aware without ever changing results:
//! - **chunked prefill** ([`ServeConfig::prefill_chunk_tokens`]) splits a
//!   long prompt into budgeted per-tick chunks interleaved with ready
//!   decode steps, bounding head-of-line blocking;
//! - **priority preemption** ([`Priority`] on [`ServeRequest`]) suspends a
//!   lower-class running session through the paged host tier
//!   ([`pqc_core::SelectiveSession::suspend`]) to give its slot to a
//!   latency-sensitive arrival, resuming it later bit-identically;
//! - **latency accounting** ([`LatencySummary`] in [`ServeReport`]) tracks
//!   per-request TTFT/TPOT on both the wall clock and the deterministic
//!   tick clock, with p50/p95/p99 tails.
//!
//! Overload browns out before it blacks out ([`ServeConfig::overload`]):
//! a per-shard [`OverloadController`] maps queue depth, slot/page-pool
//! occupancy, deadline misses, and TTFT-vs-SLO through hysteresis onto a
//! [`PressureLevel`] ladder, dialing Low/Normal selection effort down
//! within a recall floor ([`pqc_core::SelectionEffort`]), deferring Low
//! admissions, stretching the checkpoint cadence, and only shedding at
//! `Critical` — all on the tick clock, replay-identical, and bit-identical
//! to the pre-brownout engine when disabled.
//!
//! Crash recovery treats whole-worker loss and silent store corruption as
//! bounded, recoverable events:
//! - **checkpointing** ([`ServeConfig::checkpoint_every_ticks`]) snapshots
//!   every resident session through the paged tier without evicting it
//!   (pinned swap pages + a copy-on-write store fork);
//! - **shard failover**: a dead worker's checkpointed sessions are resumed
//!   and replayed forward on healthy shards, bit-identical to the
//!   fault-free run; un-checkpointed ones fail typed
//!   ([`ServeError::ShardLost`]);
//! - **integrity**: per-page checksums mean corrupt KV bytes are never
//!   served — a session whose page fails its checksum rolls back to its
//!   last good checkpoint, or fails typed ([`ServeError::KvCorruption`]).
//!
//! Scheduling is provably behaviour-neutral: `tests/serve_equivalence.rs`
//! asserts bit-identical logits and selected-token sets against the
//! sequential engine at 1, 2, and 4 shards;
//! `tests/scheduler_invariance.rs` extends that to random chunk budgets,
//! priority mixes, and forced preemption schedules; and
//! `tests/serve_stress.rs` churns 64 sessions through 4 workers under the
//! queue bound.

#![warn(missing_docs)]

mod engine;
pub mod error;
pub mod faults;
pub mod latency;
pub mod overload;
mod queue;

pub use engine::{
    Completion, Priority, ServeConfig, ServeEngine, ServeReport, ServeRequest, ShardAssignment,
    ShardStats, StepTrace,
};
pub use error::{FailureCause, RetryPolicy, ServeError};
pub use faults::{
    AdmissionReject, BitFlip, FaultPlan, InjectedPanic, SessionPanic, ShardStall, WorkerKill,
};
pub use latency::{LatencySummary, Percentiles};
pub use overload::{
    OverloadConfig, OverloadController, OverloadSummary, PressureLevel, PressureSample,
};
pub use queue::BoundedQueue;
