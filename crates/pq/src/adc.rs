//! Asymmetric Distance Computation (ADC) for inner-product search.
//!
//! Decode-phase Step ❹: multiply the partitioned query against PQ centroids
//! once (`(m, 1, dm) × (m, dm, 2^b)` in the paper's shapes), producing a
//! lookup table; then every token's approximate attention logit is the sum of
//! `m` table entries addressed by its codes. This is O(2^b·dh + s·m) instead
//! of O(s·dh) for exact scores.

use crate::codebook::{PqCodebook, PqCodes, CODE_BLOCK};
use crate::ivf::IvfIndex;
use pqc_tensor::{dot, top_k_indices, Matrix, TopK};

/// Pre-computed per-query lookup table: `table[j][c]` is the inner product of
/// query sub-vector `j` with centroid `c` of sub-space `j`.
///
/// Alongside the raw table a **prefix-max** copy is kept (`prefmax[j][c]` =
/// max of `table[j][0..=c]`): combined with [`PqCodes`]' per-block max-code
/// tracking it upper-bounds the best achievable score of any token block in
/// O(m), which is what lets the fused score-and-select scan skip blocks that
/// cannot beat the running k-th-best threshold.
#[derive(Debug, Clone, Default)]
pub struct AdcTable {
    m: usize,
    k_c: usize,
    table: Vec<f32>,
    prefmax: Vec<f32>,
}

impl AdcTable {
    /// Build the table for one query vector.
    pub fn build(book: &PqCodebook, query: &[f32]) -> Self {
        let mut t = Self::default();
        t.rebuild(book, query);
        t
    }

    /// Rebuild in place for a new query, reusing the table buffer — the
    /// per-decode-step path allocates nothing after warm-up.
    pub fn rebuild(&mut self, book: &PqCodebook, query: &[f32]) {
        assert_eq!(query.len(), book.dh(), "query dimension mismatch");
        let m = book.config().m;
        let dm = book.dm();
        let k_c = book.centroids(0).rows();
        self.m = m;
        self.k_c = k_c;
        self.table.clear();
        self.table.reserve(m * k_c);
        self.prefmax.clear();
        self.prefmax.reserve(m * k_c);
        for j in 0..m {
            let sub = &query[j * dm..(j + 1) * dm];
            let cents = book.centroids(j);
            debug_assert_eq!(cents.rows(), k_c);
            let mut running = f32::NEG_INFINITY;
            for c in 0..k_c {
                let v = dot(sub, cents.row(c));
                self.table.push(v);
                running = running.max(v);
                self.prefmax.push(running);
            }
        }
    }

    /// Upper bound on the score of any token in block `blk` of `codes`:
    /// per column, no code in the block exceeds its tracked block max, so
    /// the prefix-max table entry at that code bounds the column's
    /// contribution. Summation mirrors the scan's association (sequential
    /// adds), and f32 addition is monotone, so the bound dominates every
    /// in-block score *as computed by the scan*, bit for bit.
    #[inline]
    fn block_score_bound(&self, codes: &PqCodes, blk: usize) -> f32 {
        let mut bound = 0.0f32;
        for j in 0..self.m {
            let c = codes.block_max_code(j, blk) as usize;
            bound += self.prefmax[j * self.k_c + c];
        }
        bound
    }

    /// Table entry for sub-space `j`, centroid `c`.
    #[inline]
    pub fn entry(&self, j: usize, c: usize) -> f32 {
        self.table[j * self.k_c + c]
    }

    /// Approximate inner product of the query with one token's codes.
    #[inline]
    pub fn score_token(&self, token_codes: &[u16]) -> f32 {
        debug_assert_eq!(token_codes.len(), self.m);
        let mut s = 0.0;
        for (j, &c) in token_codes.iter().enumerate() {
            s += self.entry(j, c as usize);
        }
        s
    }

    /// Fused ADC scan: approximate inner products for all encoded tokens,
    /// written into `out` (cleared first).
    ///
    /// Walks one contiguous SoA code column per sub-space, accumulating into
    /// `out` — the 2^b-entry LUT row stays in L1 for the whole column and no
    /// per-token slice is materialised. Accumulation order per token matches
    /// [`Self::score_token`] (sub-space 0 first), so results are
    /// bit-identical to the scalar path.
    pub fn scores_into(&self, codes: &PqCodes, out: &mut Vec<f32>) {
        self.scores_prefix_into(codes, codes.len(), out);
    }

    /// [`Self::scores_into`] limited to the first `n` encoded tokens — the
    /// engine bounds retrieval by the live middle length, so the scan never
    /// touches the excess tail.
    pub fn scores_prefix_into(&self, codes: &PqCodes, n: usize, out: &mut Vec<f32>) {
        let n = n.min(codes.len());
        self.assert_codes_bounded(codes);
        self.score_range_into(codes, 0, n, out);
    }

    /// One bounds proof per column: every code in column `j` is
    /// ≤ max_code(j), so the per-element LUT lookups in the scans below
    /// cannot go out of bounds and can skip the per-access check.
    fn assert_codes_bounded(&self, codes: &PqCodes) {
        assert_eq!(codes.m(), self.m, "sub-space count mismatch");
        for j in 0..self.m {
            assert!(
                codes.is_empty() || (codes.max_code(j) as usize) < self.k_c,
                "code column {j} exceeds table width {}",
                self.k_c
            );
        }
    }

    /// Scores of the token range `[lo, hi)`, written into `out` (cleared
    /// first; `out[i]` scores token `lo + i`). Per-token accumulation order
    /// is identical to [`Self::score_token`], so any split of a scan into
    /// ranges is bit-identical to the whole-prefix scan.
    ///
    /// Callers must have validated code bounds via
    /// [`Self::assert_codes_bounded`] (the public entry points do).
    fn score_range_into(&self, codes: &PqCodes, lo: usize, hi: usize, out: &mut Vec<f32>) {
        debug_assert!(lo <= hi && hi <= codes.len());
        out.clear();
        if lo >= hi || self.m == 0 {
            out.resize(hi.saturating_sub(lo), 0.0);
            return;
        }
        let lut = |j: usize| &self.table[j * self.k_c..(j + 1) * self.k_c];
        let col = |j: usize| &codes.column(j)[lo..hi];
        // First pass *writes* (no zero-fill, no read-modify-write): one
        // column alone, or the first two columns fused.
        let mut j = if self.m == 1 {
            let r0 = lut(0);
            let c0 = col(0);
            // SAFETY: codes bounded by the max_code assertions above.
            out.extend(c0.iter().map(|&a| unsafe { *r0.get_unchecked(a as usize) }));
            1
        } else {
            let (r0, r1) = (lut(0), lut(1));
            let (c0, c1) = (col(0), col(1));
            // Two sequential adds keep f32 association identical to
            // `score_token` (bit-identical scores).
            // SAFETY: codes bounded by the max_code assertions above.
            out.extend(c0.iter().zip(c1.iter()).map(|(&a, &b)| unsafe {
                let t = *r0.get_unchecked(a as usize);
                t + *r1.get_unchecked(b as usize)
            }));
            2
        };
        // Remaining columns accumulate pairwise: half the passes over `out`,
        // still sequential adds per token for bit-identical association.
        while j + 1 < self.m {
            let (r0, r1) = (lut(j), lut(j + 1));
            let (c0, c1) = (col(j), col(j + 1));
            for ((s, &a), &b) in out.iter_mut().zip(c0.iter()).zip(c1.iter()) {
                // SAFETY: codes bounded by the max_code assertions above.
                unsafe {
                    *s += *r0.get_unchecked(a as usize);
                    *s += *r1.get_unchecked(b as usize);
                }
            }
            j += 2;
        }
        if j < self.m {
            let r0 = lut(j);
            let c0 = col(j);
            for (s, &a) in out.iter_mut().zip(c0.iter()) {
                // SAFETY: codes bounded by the max_code assertions above.
                *s += unsafe { *r0.get_unchecked(a as usize) };
            }
        }
    }

    /// Approximate inner products for all encoded tokens (allocating
    /// convenience wrapper around [`Self::scores_into`]).
    pub fn score_all(&self, codes: &PqCodes) -> Vec<f32> {
        let mut out = Vec::with_capacity(codes.len());
        self.scores_into(codes, &mut out);
        out
    }

    /// Fused score-and-select over the first `n` tokens: stream the paired-
    /// column ADC scan in [`CODE_BLOCK`]-token blocks straight into a
    /// [`TopK`] stream, and once a running k-th-best threshold exists, skip
    /// whole blocks whose upper bound ([`Self::block_score_bound`]) cannot
    /// beat it — their scores are never materialised. Selected indices land
    /// in `out` (descending score, ties toward the smaller index).
    ///
    /// Returns the number of pruned blocks. The selected set is
    /// **bit-identical** to the unfused `scores_prefix_into` +
    /// `TopK::select_into` pipeline: block scoring preserves the scan's
    /// per-token accumulation order, pruning only discards tokens that
    /// provably lose to the current k-th best (strictly on score, or on the
    /// ascending-index tie-break), and every selection path shares the same
    /// total order.
    pub fn score_and_select_into(
        &self,
        codes: &PqCodes,
        n: usize,
        k: usize,
        topk: &mut TopK,
        block_scores: &mut Vec<f32>,
        out: &mut Vec<usize>,
    ) -> usize {
        let n = n.min(codes.len());
        self.assert_codes_bounded(codes);
        let k = k.min(n);
        topk.stream_begin(k);
        if k == 0 {
            // Nothing can be selected: skip the scan entirely (the batch
            // selector's k = 0 early-out, streaming edition).
            topk.stream_finish_into(out);
            return 0;
        }
        let mut pruned = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + CODE_BLOCK).min(n);
            let blk = lo / CODE_BLOCK;
            if let Some(threshold) = topk.stream_threshold() {
                // Strict `<`: the threshold is the exact k-th-best score at
                // the selector's last compaction, so a block whose bound
                // falls strictly below it cannot contribute to the final
                // top-k (boundary ties are retained by the selector and
                // resolved by total order at finish; NaN bounds fail `<`
                // and never prune).
                if self.block_score_bound(codes, blk) < threshold {
                    pruned += 1;
                    lo = hi;
                    continue;
                }
            }
            self.score_range_into(codes, lo, hi, block_scores);
            // Bulk offer: the threshold reject loop runs tight inside the
            // selector (~one branch-predictable comparison per token), and
            // only survivors are appended as candidates.
            topk.stream_offer_block(block_scores, lo);
            lo = hi;
        }
        topk.stream_finish_into(out);
        pruned
    }

    /// IVF-routed fused score-and-select: score the coarse centroids, probe
    /// the `n_probe` best cells, and stream only those cells' SoA code
    /// columns through the [`TopK`] streaming selector — tokens outside the
    /// probed cells are never touched, so per-step ADC work is
    /// O(n_list·dh + s·m·n_probe/n_list) instead of O(s·m).
    ///
    /// Pruning composes with routing: inside a probed cell, whole
    /// [`CODE_BLOCK`]-blocks whose upper bound ([`Self::block_score_bound`]
    /// over the cell's own block-max codes) cannot beat the running
    /// k-th-best threshold are skipped, exactly as in the flat
    /// [`Self::score_and_select_into`]. Only tokens with id `< n` are
    /// offered (cell id lists ascend, so the eligible prefix is found by
    /// one binary search per cell).
    ///
    /// With `n_probe >= n_list` every cell is scanned, every eligible token
    /// is offered exactly once (cells partition the ids), and per-token
    /// scores come from the same `score_range_into` accumulation order as
    /// the flat scan — the selected set is **bit-identical** to
    /// [`Self::score_and_select_into`] (enforced by `tests/ivf_equivalence.rs`).
    #[allow(clippy::too_many_arguments)] // hot path: caller-owned scratch, no bundling
    pub fn score_and_select_ivf_into(
        &self,
        ivf: &IvfIndex,
        query: &[f32],
        n: usize,
        k: usize,
        n_probe: usize,
        topk: &mut TopK,
        scratch: &mut IvfScratch,
        block_scores: &mut Vec<f32>,
        out: &mut Vec<usize>,
    ) -> IvfSelectStats {
        let mut stats = IvfSelectStats::default();
        let eligible = n.min(ivf.len());
        let k = k.min(eligible);
        // Coarse routing through the shared O(n) selector, *before* the
        // stream opens (the batch and streaming modes share one TopK).
        ivf.score_cells_into(query, &mut scratch.coarse_scores);
        // `n_probe` is validated up front by the config layer
        // (`SessionConfig::validate` rejects 0 and > n_list with a typed
        // `ConfigError`); this saturation is defense-in-depth for direct
        // kernel callers only and is a no-op for validated inputs.
        let n_probe = n_probe.clamp(1, ivf.n_list().max(1));
        topk.select_into(&scratch.coarse_scores, n_probe, &mut scratch.cells);
        stats.probed_cells = scratch.cells.len();

        topk.stream_begin(k);
        if k == 0 {
            topk.stream_finish_into(out);
            return stats;
        }
        for &c in &scratch.cells {
            let (ids, codes) = ivf.cell(c);
            // Eligible prefix: ids ascend, so one partition point bounds
            // the scan (appended-but-not-yet-live tokens sit past it).
            let lim = ids.partition_point(|&id| (id as usize) < n);
            if lim == 0 {
                continue;
            }
            self.assert_codes_bounded(codes);
            let mut lo = 0usize;
            while lo < lim {
                let hi = (lo + CODE_BLOCK).min(lim);
                let blk = lo / CODE_BLOCK;
                if let Some(threshold) = topk.stream_threshold() {
                    // Same strict-`<` argument as the flat fused scan: the
                    // block bound covers every member (including any past
                    // `lim`), so a bound below the exact k-th-best excludes
                    // the whole block; NaN bounds fail `<` and never prune.
                    if self.block_score_bound(codes, blk) < threshold {
                        stats.pruned_blocks += 1;
                        lo = hi;
                        continue;
                    }
                }
                self.score_range_into(codes, lo, hi, block_scores);
                topk.stream_offer_indexed(block_scores, &ids[lo..hi]);
                stats.scanned_tokens += hi - lo;
                lo = hi;
            }
        }
        topk.stream_finish_into(out);
        stats
    }

    /// ADC scores of an arbitrary candidate subset (`ids` index into
    /// `codes`), written into `out` (cleared first) in `ids` order — still
    /// sub-space-major so each LUT row stays hot. The IVF hot path no
    /// longer goes through here (it scans per-cell columns via
    /// [`Self::score_and_select_ivf_into`]); this stays as the general
    /// scatter-scoring API and the equivalence tests' reference.
    pub fn score_subset_into(&self, codes: &PqCodes, ids: &[usize], out: &mut Vec<f32>) {
        assert_eq!(codes.m(), self.m, "sub-space count mismatch");
        out.clear();
        out.resize(ids.len(), 0.0);
        for j in 0..self.m {
            let row = &self.table[j * self.k_c..(j + 1) * self.k_c];
            let col = codes.column(j);
            assert!(
                ids.is_empty() || (codes.max_code(j) as usize) < self.k_c,
                "code column {j} exceeds table width {}",
                self.k_c
            );
            for (s, &i) in out.iter_mut().zip(ids.iter()) {
                // SAFETY: `col[i] <= max_code(j) < k_c`, checked above
                // (`col[i]` itself stays bounds-checked: `ids` is arbitrary).
                *s += unsafe { *row.get_unchecked(col[i] as usize) };
            }
        }
    }
}

/// Per-step counters from the IVF-routed fused scan — what the benches use
/// to demonstrate sublinear selection cost (scanned tokens ≪ context) and
/// that block pruning still composes with routing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IvfSelectStats {
    /// Coarse cells actually probed.
    pub probed_cells: usize,
    /// Tokens whose scores were materialised (≤ the probed cells' members).
    pub scanned_tokens: usize,
    /// [`CODE_BLOCK`]-blocks inside probed cells skipped by the threshold
    /// bound.
    pub pruned_blocks: usize,
}

/// Reusable IVF-routing scratch: coarse-centroid scores and the probed-cell
/// index buffer. Lives inside [`PqRetriever`] (and therefore inside the
/// policies' shared `PolicyScratch`), so N serving sessions on a shard cost
/// one set of routing buffers.
#[derive(Debug, Default, Clone)]
pub struct IvfScratch {
    /// Inner products of the query with each coarse centroid.
    pub(crate) coarse_scores: Vec<f32>,
    /// Indices of the probed cells (coarse-score descending).
    pub(crate) cells: Vec<usize>,
}

impl IvfScratch {
    /// Total capacity of the routing buffers (allocation-stability tests).
    pub fn capacity(&self) -> usize {
        self.coarse_scores.capacity() + self.cells.capacity()
    }
}

/// Reusable decode-step retrieval state: ADC table, score buffer, top-k
/// heap, and IVF routing scratch. After the first call every step of
/// `pq_top_k`-equivalent work — table build, fused scan, selection — runs
/// with zero heap allocations.
#[derive(Debug, Default, Clone)]
pub struct PqRetriever {
    table: AdcTable,
    scores: Vec<f32>,
    topk: TopK,
    ivf: IvfScratch,
}

impl PqRetriever {
    /// A retriever with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate top-k: builds the ADC table for `query`, runs the fused
    /// scan over `codes`, and writes the indices of the `k` best scores
    /// (descending) into `out`. Identical results to [`pq_top_k`].
    pub fn top_k_into(
        &mut self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        k: usize,
        out: &mut Vec<usize>,
    ) {
        self.table.rebuild(book, query);
        self.table.scores_into(codes, &mut self.scores);
        self.topk.select_into(&self.scores, k, out);
    }

    /// Like [`Self::top_k_into`] but scanning only the first `n` tokens of
    /// `codes` — the engine bounds selection by the live middle length.
    pub fn top_k_prefix_into(
        &mut self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        n: usize,
        k: usize,
        out: &mut Vec<usize>,
    ) {
        self.table.rebuild(book, query);
        self.table.scores_prefix_into(codes, n, &mut self.scores);
        self.topk.select_into(&self.scores, k, out);
    }

    /// Fused decode-step retrieval (the serving hot path): rebuild the ADC
    /// table for `query`, then run [`AdcTable::score_and_select_into`] —
    /// the blocked scan streams straight into the selector, pruning blocks
    /// against the running k-th-best threshold, and the full score vector
    /// is never materialised (the score scratch holds one
    /// [`CODE_BLOCK`]-token block). Returns the number of pruned blocks.
    /// Bit-identical selected set to [`Self::top_k_prefix_into`].
    pub fn score_and_select_into(
        &mut self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        n: usize,
        k: usize,
        out: &mut Vec<usize>,
    ) -> usize {
        self.table.rebuild(book, query);
        self.table
            .score_and_select_into(codes, n, k, &mut self.topk, &mut self.scores, out)
    }

    /// Fused IVF-routed decode-step retrieval: rebuild the ADC table for
    /// `query`, then run [`AdcTable::score_and_select_ivf_into`] — coarse
    /// routing plus a threshold-pruned scan over only the probed cells'
    /// code columns. Returns the routing stats. With `n_probe >= n_list`
    /// the selected set is bit-identical to [`Self::score_and_select_into`].
    #[allow(clippy::too_many_arguments)] // hot path: flat knobs, no bundling
    pub fn score_and_select_ivf_into(
        &mut self,
        book: &PqCodebook,
        ivf: &IvfIndex,
        query: &[f32],
        n: usize,
        k: usize,
        n_probe: usize,
        out: &mut Vec<usize>,
    ) -> IvfSelectStats {
        self.table.rebuild(book, query);
        self.table.score_and_select_ivf_into(
            ivf,
            query,
            n,
            k,
            n_probe,
            &mut self.topk,
            &mut self.ivf,
            &mut self.scores,
            out,
        )
    }

    /// Capacities of the internal scratch buffers `(table, scores, heap)` —
    /// exposed so tests can assert steady-state allocation stability. The
    /// table component covers both the raw LUT and its prefix-max copy; the
    /// heap component folds in the IVF routing buffers.
    pub fn scratch_capacities(&self) -> (usize, usize, usize) {
        (
            self.table.table.capacity() + self.table.prefmax.capacity(),
            self.scores.capacity(),
            self.topk.scratch_capacity() + self.ivf.capacity(),
        )
    }
}

/// Approximate top-k retrieval: score every encoded token with ADC and return
/// the indices of the `k` best, descending. Allocating convenience wrapper
/// around [`PqRetriever`]; steady-state callers should hold a retriever.
pub fn pq_top_k(book: &PqCodebook, codes: &PqCodes, query: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    PqRetriever::new().top_k_into(book, codes, query, k, &mut out);
    out
}

/// Exact top-k over raw keys, for Oracle comparisons and recall measurement.
pub fn exact_top_k(keys: &Matrix, query: &[f32], k: usize) -> Vec<usize> {
    let mut scores = Vec::with_capacity(keys.rows());
    for i in 0..keys.rows() {
        scores.push(dot(query, keys.row(i)));
    }
    top_k_indices(&scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::PqConfig;
    use pqc_tensor::{topk_recall, Rng64};

    fn setup(s: usize, dh: usize, m: usize, b: u32, seed: u64) -> (Matrix, PqCodebook, PqCodes) {
        let mut rng = Rng64::new(seed);
        let keys = Matrix::randn(s, dh, 1.0, &mut rng);
        let (book, codes) = PqCodebook::train(&keys, PqConfig { m, b, max_iters: 20, seed });
        (keys, book, codes)
    }

    #[test]
    fn adc_score_equals_dot_with_reconstruction() {
        // Core PQ invariant: ADC(q, codes_i) == <q, reconstruct(codes_i)>.
        let (_, book, codes) = setup(150, 16, 4, 4, 11);
        let mut rng = Rng64::new(99);
        let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);
        for i in 0..codes.len() {
            let approx = table.score_token(&codes.token(i));
            let rec = book.reconstruct(&codes.token(i));
            let exact_on_rec = dot(&q, &rec);
            assert!(
                (approx - exact_on_rec).abs() < 1e-4,
                "token {i}: {approx} vs {exact_on_rec}"
            );
        }
    }

    #[test]
    fn adc_approximates_exact_dot_within_tolerance() {
        // ADC against the *original* keys (not the reconstruction) is only
        // approximate; the quantization error must stay well below the score
        // scale for the paper's operating point (m=4, b=6) to make sense.
        let (keys, book, codes) = setup(400, 32, 4, 6, 13);
        let mut rng = Rng64::new(17);
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);

        let q_norm = dot(&q, &q).sqrt() as f64;
        let mut abs_err = 0.0f64;
        let mut abs_exact = 0.0f64;
        for i in 0..codes.len() {
            let approx = table.score_token(&codes.token(i)) as f64;
            let exact = dot(&q, keys.row(i)) as f64;
            let err = (approx - exact).abs();
            // Cauchy–Schwarz: |ADC - exact| = |<q, rec - k>| <= ||q||·||rec - k||.
            let rec = book.reconstruct(&codes.token(i));
            let bound = q_norm * (pqc_tensor::squared_l2(&rec, keys.row(i)) as f64).sqrt();
            assert!(err <= bound + 1e-3, "token {i}: err {err:.4} exceeds bound {bound:.4}");
            abs_err += err;
            abs_exact += exact.abs();
        }
        // And in aggregate the approximation must sit below the score scale
        // (deterministic fixtures: observed mae ≈ 0.62 × scale at m=4, b=6).
        let mae = abs_err / codes.len() as f64;
        let scale = abs_exact / codes.len() as f64;
        assert!(
            mae < 0.8 * scale,
            "ADC error too large: mae {mae:.4} vs score scale {scale:.4}"
        );
    }

    #[test]
    fn recall_improves_with_more_bits() {
        let mut rng = Rng64::new(21);
        let keys = Matrix::randn(500, 32, 1.0, &mut rng);
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let exact = exact_top_k(&keys, &q, 50);

        let mut recalls = Vec::new();
        for b in [2u32, 4, 6, 8] {
            let (book, codes) =
                PqCodebook::train(&keys, PqConfig { m: 4, b, max_iters: 20, seed: 5 });
            let approx = pq_top_k(&book, &codes, &q, 50);
            recalls.push(topk_recall(&exact, &approx));
        }
        // Not necessarily strictly monotone, but the trend must be clear.
        assert!(recalls[3] > recalls[0] + 0.1, "recalls {recalls:?}");
        assert!(recalls[3] > 0.6, "recalls {recalls:?}");
    }

    #[test]
    fn perfect_recall_when_centroids_exhaust_data() {
        // k_c >= s means every key can be its own centroid: exact search.
        let (keys, book, codes) = setup(30, 8, 1, 5, 31);
        let mut rng = Rng64::new(7);
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let exact = exact_top_k(&keys, &q, 5);
        let approx = pq_top_k(&book, &codes, &q, 5);
        let recall = topk_recall(&exact, &approx);
        assert!(recall > 0.99, "recall {recall}");
    }

    #[test]
    fn score_all_length() {
        let (_, book, codes) = setup(64, 16, 2, 4, 41);
        let q = vec![0.5f32; 16];
        let t = AdcTable::build(&book, &q);
        assert_eq!(t.score_all(&codes).len(), 64);
    }

    #[test]
    fn zero_query_scores_zero() {
        let (_, book, codes) = setup(40, 16, 2, 4, 51);
        let q = vec![0.0f32; 16];
        let t = AdcTable::build(&book, &q);
        for s in t.score_all(&codes) {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn top_k_deterministic() {
        let (_, book, codes) = setup(256, 32, 4, 6, 61);
        let q = vec![0.1f32; 32];
        assert_eq!(pq_top_k(&book, &codes, &q, 10), pq_top_k(&book, &codes, &q, 10));
    }

    #[test]
    fn fused_select_matches_unfused_across_blocks() {
        // Fixture larger than CODE_BLOCK so the fused scan spans several
        // blocks (and can prune): results must equal the unfused
        // scan+select pipeline exactly, for every (n, k) shape.
        let (_, book, codes) = setup(crate::CODE_BLOCK * 2 + 137, 16, 2, 4, 71);
        let mut rng = Rng64::new(72);
        let mut retriever = PqRetriever::new();
        for trial in 0..8 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            for &(n, k) in &[
                (codes.len(), 16usize),
                (codes.len(), 0),
                (codes.len(), codes.len()),
                (crate::CODE_BLOCK + 9, 5),
                (3, 8),
                (0, 4),
            ] {
                let mut unfused = Vec::new();
                retriever.top_k_prefix_into(&book, &codes, &q, n, k, &mut unfused);
                let mut fused = Vec::new();
                let _ = retriever.score_and_select_into(&book, &codes, &q, n, k, &mut fused);
                assert_eq!(unfused, fused, "trial {trial}, n={n}, k={k}");
            }
        }
    }

    #[test]
    fn fused_select_prunes_cold_blocks() {
        // Construct codes whose later blocks can only reference centroid 0,
        // and a table where centroid 0 scores lowest: with k small, the
        // running threshold must exceed those blocks' bound and prune them.
        let s = crate::CODE_BLOCK * 3;
        let mut rng = Rng64::new(73);
        let keys = Matrix::randn(256, 8, 1.0, &mut rng);
        let (book, _) = PqCodebook::train(&keys, PqConfig { m: 1, b: 4, max_iters: 10, seed: 3 });
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);
        let k_c = book.centroids(0).rows();
        // Centroid with the smallest table entry hosts the cold blocks.
        let cold = (0..k_c).min_by(|&a, &b| {
            table.entry(0, a).partial_cmp(&table.entry(0, b)).unwrap()
        }).unwrap() as u16;
        let col: Vec<u16> = (0..s)
            .map(|i| if i < crate::CODE_BLOCK { (i % k_c) as u16 } else { cold })
            .collect();
        let codes = PqCodes::from_columns(vec![col]);
        let mut topk = TopK::new();
        let (mut buf, mut fused) = (Vec::new(), Vec::new());
        let pruned = table.score_and_select_into(&codes, s, 4, &mut topk, &mut buf, &mut fused);
        assert_eq!(pruned, 2, "both cold blocks should be skipped");
        // And pruning must not have changed the answer.
        let mut scores = Vec::new();
        table.scores_into(&codes, &mut scores);
        assert_eq!(fused, top_k_indices(&scores, 4));
    }
}
