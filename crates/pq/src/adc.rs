//! Asymmetric Distance Computation (ADC) for inner-product search.
//!
//! Decode-phase Step ❹: multiply the partitioned query against PQ centroids
//! once (`(m, 1, dm) × (m, dm, 2^b)` in the paper's shapes), producing a
//! lookup table; then every token's approximate attention logit is the sum of
//! `m` table entries addressed by its codes. This is O(2^b·dh + s·m) instead
//! of O(s·dh) for exact scores.

use crate::codebook::{PqCodebook, PqCodes};
use pqc_tensor::{dot, top_k_indices, Matrix, TopK};

/// Pre-computed per-query lookup table: `table[j][c]` is the inner product of
/// query sub-vector `j` with centroid `c` of sub-space `j`.
#[derive(Debug, Clone, Default)]
pub struct AdcTable {
    m: usize,
    k_c: usize,
    table: Vec<f32>,
}

impl AdcTable {
    /// Build the table for one query vector.
    pub fn build(book: &PqCodebook, query: &[f32]) -> Self {
        let mut t = Self::default();
        t.rebuild(book, query);
        t
    }

    /// Rebuild in place for a new query, reusing the table buffer — the
    /// per-decode-step path allocates nothing after warm-up.
    pub fn rebuild(&mut self, book: &PqCodebook, query: &[f32]) {
        assert_eq!(query.len(), book.dh(), "query dimension mismatch");
        let m = book.config().m;
        let dm = book.dm();
        let k_c = book.centroids(0).rows();
        self.m = m;
        self.k_c = k_c;
        self.table.clear();
        self.table.reserve(m * k_c);
        for j in 0..m {
            let sub = &query[j * dm..(j + 1) * dm];
            let cents = book.centroids(j);
            debug_assert_eq!(cents.rows(), k_c);
            for c in 0..k_c {
                self.table.push(dot(sub, cents.row(c)));
            }
        }
    }

    /// Table entry for sub-space `j`, centroid `c`.
    #[inline]
    pub fn entry(&self, j: usize, c: usize) -> f32 {
        self.table[j * self.k_c + c]
    }

    /// Approximate inner product of the query with one token's codes.
    #[inline]
    pub fn score_token(&self, token_codes: &[u16]) -> f32 {
        debug_assert_eq!(token_codes.len(), self.m);
        let mut s = 0.0;
        for (j, &c) in token_codes.iter().enumerate() {
            s += self.entry(j, c as usize);
        }
        s
    }

    /// Fused ADC scan: approximate inner products for all encoded tokens,
    /// written into `out` (cleared first).
    ///
    /// Walks one contiguous SoA code column per sub-space, accumulating into
    /// `out` — the 2^b-entry LUT row stays in L1 for the whole column and no
    /// per-token slice is materialised. Accumulation order per token matches
    /// [`Self::score_token`] (sub-space 0 first), so results are
    /// bit-identical to the scalar path.
    pub fn scores_into(&self, codes: &PqCodes, out: &mut Vec<f32>) {
        self.scores_prefix_into(codes, codes.len(), out);
    }

    /// [`Self::scores_into`] limited to the first `n` encoded tokens — the
    /// engine bounds retrieval by the live middle length, so the scan never
    /// touches the excess tail.
    pub fn scores_prefix_into(&self, codes: &PqCodes, n: usize, out: &mut Vec<f32>) {
        assert_eq!(codes.m(), self.m, "sub-space count mismatch");
        let n = n.min(codes.len());
        out.clear();
        if n == 0 || self.m == 0 {
            out.resize(n, 0.0);
            return;
        }
        // One bounds proof per column: every code in column `j` is
        // ≤ max_code(j), so the per-element LUT lookups below cannot go out
        // of bounds and can skip the per-access check.
        for j in 0..self.m {
            assert!(
                (codes.max_code(j) as usize) < self.k_c,
                "code column {j} exceeds table width {}",
                self.k_c
            );
        }
        let lut = |j: usize| &self.table[j * self.k_c..(j + 1) * self.k_c];
        let col = |j: usize| &codes.column(j)[..n];
        // First pass *writes* (no zero-fill, no read-modify-write): one
        // column alone, or the first two columns fused.
        let mut j = if self.m == 1 {
            let r0 = lut(0);
            let c0 = col(0);
            // SAFETY: codes bounded by the max_code assertions above.
            out.extend(c0.iter().map(|&a| unsafe { *r0.get_unchecked(a as usize) }));
            1
        } else {
            let (r0, r1) = (lut(0), lut(1));
            let (c0, c1) = (col(0), col(1));
            // Two sequential adds keep f32 association identical to
            // `score_token` (bit-identical scores).
            // SAFETY: codes bounded by the max_code assertions above.
            out.extend(c0.iter().zip(c1.iter()).map(|(&a, &b)| unsafe {
                let t = *r0.get_unchecked(a as usize);
                t + *r1.get_unchecked(b as usize)
            }));
            2
        };
        // Remaining columns accumulate pairwise: half the passes over `out`,
        // still sequential adds per token for bit-identical association.
        while j + 1 < self.m {
            let (r0, r1) = (lut(j), lut(j + 1));
            let (c0, c1) = (col(j), col(j + 1));
            for ((s, &a), &b) in out.iter_mut().zip(c0.iter()).zip(c1.iter()) {
                // SAFETY: codes bounded by the max_code assertions above.
                unsafe {
                    *s += *r0.get_unchecked(a as usize);
                    *s += *r1.get_unchecked(b as usize);
                }
            }
            j += 2;
        }
        if j < self.m {
            let r0 = lut(j);
            let c0 = col(j);
            for (s, &a) in out.iter_mut().zip(c0.iter()) {
                // SAFETY: codes bounded by the max_code assertions above.
                *s += unsafe { *r0.get_unchecked(a as usize) };
            }
        }
    }

    /// Approximate inner products for all encoded tokens (allocating
    /// convenience wrapper around [`Self::scores_into`]).
    pub fn score_all(&self, codes: &PqCodes) -> Vec<f32> {
        let mut out = Vec::with_capacity(codes.len());
        self.scores_into(codes, &mut out);
        out
    }

    /// ADC scores of an arbitrary candidate subset (`ids` index into
    /// `codes`), written into `out` (cleared first) in `ids` order. Used by
    /// IVF probing: still sub-space-major so each LUT row stays hot.
    pub fn score_subset_into(&self, codes: &PqCodes, ids: &[usize], out: &mut Vec<f32>) {
        assert_eq!(codes.m(), self.m, "sub-space count mismatch");
        out.clear();
        out.resize(ids.len(), 0.0);
        for j in 0..self.m {
            let row = &self.table[j * self.k_c..(j + 1) * self.k_c];
            let col = codes.column(j);
            assert!(
                ids.is_empty() || (codes.max_code(j) as usize) < self.k_c,
                "code column {j} exceeds table width {}",
                self.k_c
            );
            for (s, &i) in out.iter_mut().zip(ids.iter()) {
                // SAFETY: `col[i] <= max_code(j) < k_c`, checked above
                // (`col[i]` itself stays bounds-checked: `ids` is arbitrary).
                *s += unsafe { *row.get_unchecked(col[i] as usize) };
            }
        }
    }
}

/// Reusable decode-step retrieval state: ADC table, score buffer, and top-k
/// heap. After the first call every step of `pq_top_k`-equivalent work —
/// table build, fused scan, selection — runs with zero heap allocations.
#[derive(Debug, Default, Clone)]
pub struct PqRetriever {
    table: AdcTable,
    scores: Vec<f32>,
    topk: TopK,
}

impl PqRetriever {
    /// A retriever with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate top-k: builds the ADC table for `query`, runs the fused
    /// scan over `codes`, and writes the indices of the `k` best scores
    /// (descending) into `out`. Identical results to [`pq_top_k`].
    pub fn top_k_into(
        &mut self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        k: usize,
        out: &mut Vec<usize>,
    ) {
        self.table.rebuild(book, query);
        self.table.scores_into(codes, &mut self.scores);
        self.topk.select_into(&self.scores, k, out);
    }

    /// Like [`Self::top_k_into`] but scanning only the first `n` tokens of
    /// `codes` — the engine bounds selection by the live middle length.
    pub fn top_k_prefix_into(
        &mut self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        n: usize,
        k: usize,
        out: &mut Vec<usize>,
    ) {
        self.table.rebuild(book, query);
        self.table.scores_prefix_into(codes, n, &mut self.scores);
        self.topk.select_into(&self.scores, k, out);
    }

    /// Capacities of the internal scratch buffers `(table, scores, heap)` —
    /// exposed so tests can assert steady-state allocation stability.
    pub fn scratch_capacities(&self) -> (usize, usize, usize) {
        (self.table.table.capacity(), self.scores.capacity(), self.topk.scratch_capacity())
    }
}

/// Approximate top-k retrieval: score every encoded token with ADC and return
/// the indices of the `k` best, descending. Allocating convenience wrapper
/// around [`PqRetriever`]; steady-state callers should hold a retriever.
pub fn pq_top_k(book: &PqCodebook, codes: &PqCodes, query: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    PqRetriever::new().top_k_into(book, codes, query, k, &mut out);
    out
}

/// Exact top-k over raw keys, for Oracle comparisons and recall measurement.
pub fn exact_top_k(keys: &Matrix, query: &[f32], k: usize) -> Vec<usize> {
    let mut scores = Vec::with_capacity(keys.rows());
    for i in 0..keys.rows() {
        scores.push(dot(query, keys.row(i)));
    }
    top_k_indices(&scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::PqConfig;
    use pqc_tensor::{topk_recall, Rng64};

    fn setup(s: usize, dh: usize, m: usize, b: u32, seed: u64) -> (Matrix, PqCodebook, PqCodes) {
        let mut rng = Rng64::new(seed);
        let keys = Matrix::randn(s, dh, 1.0, &mut rng);
        let (book, codes) = PqCodebook::train(&keys, PqConfig { m, b, max_iters: 20, seed });
        (keys, book, codes)
    }

    #[test]
    fn adc_score_equals_dot_with_reconstruction() {
        // Core PQ invariant: ADC(q, codes_i) == <q, reconstruct(codes_i)>.
        let (_, book, codes) = setup(150, 16, 4, 4, 11);
        let mut rng = Rng64::new(99);
        let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);
        for i in 0..codes.len() {
            let approx = table.score_token(&codes.token(i));
            let rec = book.reconstruct(&codes.token(i));
            let exact_on_rec = dot(&q, &rec);
            assert!(
                (approx - exact_on_rec).abs() < 1e-4,
                "token {i}: {approx} vs {exact_on_rec}"
            );
        }
    }

    #[test]
    fn adc_approximates_exact_dot_within_tolerance() {
        // ADC against the *original* keys (not the reconstruction) is only
        // approximate; the quantization error must stay well below the score
        // scale for the paper's operating point (m=4, b=6) to make sense.
        let (keys, book, codes) = setup(400, 32, 4, 6, 13);
        let mut rng = Rng64::new(17);
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let table = AdcTable::build(&book, &q);

        let q_norm = dot(&q, &q).sqrt() as f64;
        let mut abs_err = 0.0f64;
        let mut abs_exact = 0.0f64;
        for i in 0..codes.len() {
            let approx = table.score_token(&codes.token(i)) as f64;
            let exact = dot(&q, keys.row(i)) as f64;
            let err = (approx - exact).abs();
            // Cauchy–Schwarz: |ADC - exact| = |<q, rec - k>| <= ||q||·||rec - k||.
            let rec = book.reconstruct(&codes.token(i));
            let bound = q_norm * (pqc_tensor::squared_l2(&rec, keys.row(i)) as f64).sqrt();
            assert!(err <= bound + 1e-3, "token {i}: err {err:.4} exceeds bound {bound:.4}");
            abs_err += err;
            abs_exact += exact.abs();
        }
        // And in aggregate the approximation must sit below the score scale
        // (deterministic fixtures: observed mae ≈ 0.62 × scale at m=4, b=6).
        let mae = abs_err / codes.len() as f64;
        let scale = abs_exact / codes.len() as f64;
        assert!(
            mae < 0.8 * scale,
            "ADC error too large: mae {mae:.4} vs score scale {scale:.4}"
        );
    }

    #[test]
    fn recall_improves_with_more_bits() {
        let mut rng = Rng64::new(21);
        let keys = Matrix::randn(500, 32, 1.0, &mut rng);
        let q: Vec<f32> = (0..32).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let exact = exact_top_k(&keys, &q, 50);

        let mut recalls = Vec::new();
        for b in [2u32, 4, 6, 8] {
            let (book, codes) =
                PqCodebook::train(&keys, PqConfig { m: 4, b, max_iters: 20, seed: 5 });
            let approx = pq_top_k(&book, &codes, &q, 50);
            recalls.push(topk_recall(&exact, &approx));
        }
        // Not necessarily strictly monotone, but the trend must be clear.
        assert!(recalls[3] > recalls[0] + 0.1, "recalls {recalls:?}");
        assert!(recalls[3] > 0.6, "recalls {recalls:?}");
    }

    #[test]
    fn perfect_recall_when_centroids_exhaust_data() {
        // k_c >= s means every key can be its own centroid: exact search.
        let (keys, book, codes) = setup(30, 8, 1, 5, 31);
        let mut rng = Rng64::new(7);
        let q: Vec<f32> = (0..8).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let exact = exact_top_k(&keys, &q, 5);
        let approx = pq_top_k(&book, &codes, &q, 5);
        let recall = topk_recall(&exact, &approx);
        assert!(recall > 0.99, "recall {recall}");
    }

    #[test]
    fn score_all_length() {
        let (_, book, codes) = setup(64, 16, 2, 4, 41);
        let q = vec![0.5f32; 16];
        let t = AdcTable::build(&book, &q);
        assert_eq!(t.score_all(&codes).len(), 64);
    }

    #[test]
    fn zero_query_scores_zero() {
        let (_, book, codes) = setup(40, 16, 2, 4, 51);
        let q = vec![0.0f32; 16];
        let t = AdcTable::build(&book, &q);
        for s in t.score_all(&codes) {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn top_k_deterministic() {
        let (_, book, codes) = setup(256, 32, 4, 6, 61);
        let q = vec![0.1f32; 32];
        assert_eq!(pq_top_k(&book, &codes, &q, 10), pq_top_k(&book, &codes, &q, 10));
    }
}
