//! # pqc-pq
//!
//! Product Quantization for KVCache keys: K-Means clustering (k-means++,
//! empty-cluster repair), per-sub-space codebooks, asymmetric distance
//! computation for approximate top-k retrieval, and the adaptive iteration
//! budget of paper §3.3 that keeps clustering inside the GPU compute window.

#![warn(missing_docs)]
// Index-based loops are kept where they mirror the mathematical notation
// (row/column/cluster indices); iterator rewrites obscure the kernels.
#![allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]

pub mod adaptive;
pub mod adc;
pub mod codebook;
pub mod ivf;
pub mod kmeans;

pub use adaptive::{AdaptiveIterBudget, ClusterSample, ComputeSample};
pub use adc::{exact_top_k, pq_top_k, AdcTable, IvfScratch, IvfSelectStats, PqRetriever};
pub use codebook::{PqCodebook, PqCodes, PqConfig, CODE_BLOCK};
pub use ivf::{IvfConfig, IvfIndex, IvfMode};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
