//! Adaptive K-Means iteration budget (paper §3.3, Eqs. 1–3).
//!
//! Clustering must finish inside the GPU's per-layer compute window or it
//! blocks decoding. The paper fits
//!
//! ```text
//! Time_clus(s, T) = α₁ + β₁ · s · T          (Eq. 1)
//! Time_comp(s)    = α₂ + β₂ · s + γ₂ · s²    (Eq. 2)
//! ```
//!
//! from a handful of profiled sequence lengths, then solves
//! `Time_clus = Time_comp` for the largest admissible iteration count
//!
//! ```text
//! T_max(s) = (γ₂ s² + β₂ s + α₂ − α₁) / (β₁ s)   (Eq. 3)
//! ```
//!
//! clipped to a configured `[min, max]` band. [`AdaptiveIterBudget`] performs
//! the regression over profile samples and evaluates Eq. 3.

use pqc_tensor::stats::{fit_linear, fit_quadratic};

/// One profiled observation of clustering time.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSample {
    /// Sequence length clustered.
    pub seq_len: f64,
    /// K-Means iterations run.
    pub iters: f64,
    /// Observed wall/simulated time (any consistent unit).
    pub time: f64,
}

/// One profiled observation of single-layer GPU compute time.
#[derive(Debug, Clone, Copy)]
pub struct ComputeSample {
    /// Sequence length processed.
    pub seq_len: f64,
    /// Observed time (same unit as [`ClusterSample::time`]).
    pub time: f64,
}

/// Fitted cost model + clipping band.
///
/// ```
/// use pqc_pq::AdaptiveIterBudget;
///
/// // cluster time = 2 + 0.001·s·T; compute time = 1 + 0.002·s + 1e-6·s².
/// let budget = AdaptiveIterBudget::from_coefficients(
///     (2.0, 0.001),
///     (1.0, 0.002, 1e-6),
///     (1, 100),
/// );
/// // Quadratic compute outgrows linear clustering: longer inputs afford
/// // more K-Means iterations (paper Fig. 8 / Eq. 3).
/// assert!(budget.t_max(64_000.0) > budget.t_max(8_000.0));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveIterBudget {
    alpha1: f64,
    beta1: f64,
    alpha2: f64,
    beta2: f64,
    gamma2: f64,
    clip_min: usize,
    clip_max: usize,
}

impl AdaptiveIterBudget {
    /// Fit the two regressions from profiles.
    ///
    /// `clip` bounds the returned iteration counts: the paper clips `T_max`
    /// "to ensure that the number of iterations is neither too small nor too
    /// large".
    pub fn fit(
        cluster: &[ClusterSample],
        compute: &[ComputeSample],
        clip: (usize, usize),
    ) -> Self {
        assert!(!cluster.is_empty(), "need clustering profile samples");
        assert!(!compute.is_empty(), "need compute profile samples");
        assert!(clip.0 >= 1 && clip.0 <= clip.1, "invalid clip band {clip:?}");
        let xs: Vec<f64> = cluster.iter().map(|c| c.seq_len * c.iters).collect();
        let ys: Vec<f64> = cluster.iter().map(|c| c.time).collect();
        let (alpha1, beta1) = fit_linear(&xs, &ys);

        let cx: Vec<f64> = compute.iter().map(|c| c.seq_len).collect();
        let cy: Vec<f64> = compute.iter().map(|c| c.time).collect();
        let (alpha2, beta2, gamma2) = fit_quadratic(&cx, &cy);

        Self { alpha1, beta1, alpha2, beta2, gamma2, clip_min: clip.0, clip_max: clip.1 }
    }

    /// Construct directly from known coefficients (used by the latency
    /// simulator whose cost model is analytic, so no regression is needed).
    pub fn from_coefficients(
        (alpha1, beta1): (f64, f64),
        (alpha2, beta2, gamma2): (f64, f64, f64),
        clip: (usize, usize),
    ) -> Self {
        assert!(clip.0 >= 1 && clip.0 <= clip.1);
        Self { alpha1, beta1, alpha2, beta2, gamma2, clip_min: clip.0, clip_max: clip.1 }
    }

    /// Predicted clustering time for `(s, T)` (Eq. 1).
    pub fn predict_cluster_time(&self, seq_len: f64, iters: f64) -> f64 {
        self.alpha1 + self.beta1 * seq_len * iters
    }

    /// Predicted single-layer compute time for `s` (Eq. 2).
    pub fn predict_compute_time(&self, seq_len: f64) -> f64 {
        self.alpha2 + self.beta2 * seq_len + self.gamma2 * seq_len * seq_len
    }

    /// Eq. 3: largest iteration count whose clustering time fits inside the
    /// compute window, clipped to the configured band.
    pub fn t_max(&self, seq_len: f64) -> usize {
        if seq_len <= 0.0 || self.beta1 <= 0.0 {
            return self.clip_max;
        }
        let raw = (self.gamma2 * seq_len * seq_len + self.beta2 * seq_len + self.alpha2
            - self.alpha1)
            / (self.beta1 * seq_len);
        let t = raw.floor();
        if !t.is_finite() || t < self.clip_min as f64 {
            self.clip_min
        } else if t > self.clip_max as f64 {
            self.clip_max
        } else {
            t as usize
        }
    }

    /// The clip band `(min, max)`.
    pub fn clip(&self) -> (usize, usize) {
        (self.clip_min, self.clip_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build synthetic profiles from ground-truth coefficients.
    fn synthetic() -> (Vec<ClusterSample>, Vec<ComputeSample>) {
        let (a1, b1) = (2.0, 0.001); // cluster: 2 + 0.001·s·T
        let (a2, b2, g2) = (1.0, 0.002, 1e-6); // compute: 1 + 0.002 s + 1e-6 s²
        let mut cl = Vec::new();
        for &s in &[1000.0, 2000.0, 4000.0, 8000.0] {
            for &t in &[1.0, 5.0, 10.0] {
                cl.push(ClusterSample { seq_len: s, iters: t, time: a1 + b1 * s * t });
            }
        }
        let cp = [1000.0, 2000.0, 4000.0, 8000.0, 16000.0]
            .iter()
            .map(|&s| ComputeSample { seq_len: s, time: a2 + b2 * s + g2 * s * s })
            .collect();
        (cl, cp)
    }

    #[test]
    fn recovers_coefficients_and_tmax() {
        let (cl, cp) = synthetic();
        let b = AdaptiveIterBudget::fit(&cl, &cp, (1, 1000));
        // T_max(s) = (1e-6 s² + 0.002 s + 1 - 2) / (0.001 s)
        for &s in &[2000.0f64, 8000.0, 32000.0] {
            let expect = ((1e-6 * s * s + 0.002 * s - 1.0) / (0.001 * s)).floor() as usize;
            assert_eq!(b.t_max(s), expect, "s={s}");
        }
    }

    #[test]
    fn tmax_grows_with_sequence_length() {
        // Compute is quadratic, clustering linear: longer sequences admit
        // more iterations — exactly the paper's Fig. 8 observation.
        let (cl, cp) = synthetic();
        let b = AdaptiveIterBudget::fit(&cl, &cp, (1, 10_000));
        assert!(b.t_max(64_000.0) > b.t_max(8_000.0));
        assert!(b.t_max(8_000.0) > b.t_max(1_000.0));
    }

    #[test]
    fn clipping_applies() {
        let (cl, cp) = synthetic();
        let b = AdaptiveIterBudget::fit(&cl, &cp, (3, 12));
        assert!(b.t_max(100.0) >= 3);
        assert!(b.t_max(10_000_000.0) <= 12);
    }

    #[test]
    fn short_sequences_get_min_iters() {
        let (cl, cp) = synthetic();
        let b = AdaptiveIterBudget::fit(&cl, &cp, (2, 100));
        // At tiny s the compute window is smaller than cluster setup cost.
        assert_eq!(b.t_max(10.0), 2);
    }

    #[test]
    fn from_coefficients_equals_fit() {
        let (cl, cp) = synthetic();
        let fitted = AdaptiveIterBudget::fit(&cl, &cp, (1, 1000));
        let direct = AdaptiveIterBudget::from_coefficients(
            (2.0, 0.001),
            (1.0, 0.002, 1e-6),
            (1, 1000),
        );
        for &s in &[500.0, 5_000.0, 50_000.0] {
            assert_eq!(fitted.t_max(s), direct.t_max(s), "s={s}");
        }
    }

    #[test]
    fn degenerate_beta_returns_clip_max() {
        let b = AdaptiveIterBudget::from_coefficients((0.0, 0.0), (1.0, 1.0, 0.0), (1, 7));
        assert_eq!(b.t_max(1000.0), 7);
    }

    #[test]
    #[should_panic(expected = "invalid clip band")]
    fn bad_clip_panics() {
        let (cl, cp) = synthetic();
        let _ = AdaptiveIterBudget::fit(&cl, &cp, (5, 2));
    }
}
