//! Product-quantization codebooks over key vectors.
//!
//! A [`PqCodebook`] mirrors the paper's Step ❷: the `d_h`-dimensional key
//! space is split into `m` sub-spaces of `d_m = d_h / m` dimensions, each
//! clustered into `2^b` centroids. Tokens carry one `b`-bit code per
//! sub-space ([`PqCodes`]); approximate inner products are computed by the
//! ADC machinery in [`crate::adc`].

use crate::kmeans::{kmeans, KMeansConfig};
use pqc_tensor::Matrix;

/// PQ hyper-parameters: `m` partitions × `2^b` centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqConfig {
    /// Number of sub-spaces the key dimension is split into.
    pub m: usize,
    /// Bits per code; each sub-space has `2^b` centroids.
    pub b: u32,
    /// Maximum K-Means iterations for construction (the adaptive budget).
    pub max_iters: usize,
    /// Seed for clustering.
    pub seed: u64,
}

impl PqConfig {
    /// The paper's default LongBench configuration (m=2, b=6).
    pub fn longbench_default() -> Self {
        Self { m: 2, b: 6, max_iters: 25, seed: 0 }
    }

    /// The paper's InfiniteBench configuration (m=4, b=8).
    pub fn infinitebench_default() -> Self {
        Self { m: 4, b: 8, max_iters: 25, seed: 0 }
    }

    /// Number of centroids per sub-space.
    pub fn centroids_per_subspace(&self) -> usize {
        1usize << self.b
    }

    /// Bytes of PQ-code traffic for `s` tokens (`m·s·b/8`, paper §4.1.3).
    pub fn code_bytes(&self, s: usize) -> usize {
        (self.m * s * self.b as usize).div_ceil(8)
    }

    /// Communication ratio of PQ codes relative to FP16 keys of head
    /// dimension `dh`: `m·b / (16·dh)` (paper §4.1.3).
    pub fn comm_ratio(&self, dh: usize) -> f64 {
        (self.m as f64 * self.b as f64) / (16.0 * dh as f64)
    }
}

/// Token-block granularity of the per-block max-code tracking (and of the
/// fused score-and-select scan that prunes against it). 512 × f32 block
/// scores stay comfortably in L1 while the per-block bound check amortises
/// to ~`m/512` comparisons per token.
pub const CODE_BLOCK: usize = 512;

/// PQ codes for a sequence of tokens, stored **subspace-major** (SoA): one
/// contiguous column of `u16` codes per sub-space.
///
/// The ADC scan ([`crate::adc::AdcTable::scores_into`]) walks each column
/// sequentially while its 2^b-entry LUT row stays in L1 — the layout is what
/// makes the fused scan fast. `u16` accommodates every configuration the
/// paper sweeps (`m·b ≤ 16`, so `b ≤ 16`).
///
/// Alongside the running per-column maximum (one bounds proof per scan),
/// each column tracks its maximum code per [`CODE_BLOCK`]-token block; the
/// fused score-and-select scan combines these with a prefix-max over the
/// ADC table to upper-bound a block's best possible score and skip blocks
/// that cannot beat the running k-th-best threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqCodes {
    len: usize,
    /// `cols[j][i]` = code of token `i` in sub-space `j`.
    cols: Vec<Vec<u16>>,
    /// Running per-column maximum code; lets the ADC scan validate bounds
    /// once per column instead of once per element.
    max_code: Vec<u16>,
    /// `block_max[j][blk]` = max code of sub-space `j` over tokens
    /// `[blk*CODE_BLOCK, (blk+1)*CODE_BLOCK)` (last block may be partial).
    block_max: Vec<Vec<u16>>,
}

impl PqCodes {
    /// An empty code table for `m` sub-spaces.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "PqCodes needs at least one sub-space");
        Self {
            len: 0,
            cols: vec![Vec::new(); m],
            max_code: vec![0; m],
            block_max: vec![Vec::new(); m],
        }
    }

    /// Build directly from per-sub-space columns (all equal length).
    pub fn from_columns(cols: Vec<Vec<u16>>) -> Self {
        assert!(!cols.is_empty(), "PqCodes needs at least one sub-space");
        let len = cols[0].len();
        assert!(cols.iter().all(|c| c.len() == len), "ragged code columns");
        let max_code = cols.iter().map(|c| c.iter().copied().max().unwrap_or(0)).collect();
        let block_max = cols
            .iter()
            .map(|c| {
                c.chunks(CODE_BLOCK)
                    .map(|blk| blk.iter().copied().max().unwrap_or(0))
                    .collect()
            })
            .collect();
        Self { len, cols, max_code, block_max }
    }

    /// Number of encoded tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no tokens are encoded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sub-space count.
    pub fn m(&self) -> usize {
        self.cols.len()
    }

    /// Codes of token `i` (one per sub-space) — a small gather across the
    /// columns, kept for compatibility with token-at-a-time callers
    /// (reconstruction, tests). Hot paths should use [`Self::column`].
    pub fn token(&self, i: usize) -> Vec<u16> {
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// [`Self::token`] into a caller-owned buffer (cleared first) — the
    /// allocation-free row gather the IVF build/maintenance paths use.
    pub fn token_into(&self, i: usize, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c[i]));
    }

    /// Code of token `i` in sub-space `j`.
    #[inline]
    pub fn code(&self, i: usize, j: usize) -> u16 {
        self.cols[j][i]
    }

    /// The contiguous code column of sub-space `j` (one entry per token).
    #[inline]
    pub fn column(&self, j: usize) -> &[u16] {
        &self.cols[j]
    }

    /// Largest code present in sub-space `j` (0 when empty); an upper bound
    /// the ADC scan checks once per column before its unchecked LUT walk.
    #[inline]
    pub fn max_code(&self, j: usize) -> u16 {
        self.max_code[j]
    }

    /// Largest code of sub-space `j` within token block `blk` (blocks of
    /// [`CODE_BLOCK`] tokens; the last block may be partial).
    #[inline]
    pub fn block_max_code(&self, j: usize, blk: usize) -> u16 {
        self.block_max[j][blk]
    }

    /// Number of [`CODE_BLOCK`]-token blocks currently tracked.
    pub fn n_blocks(&self) -> usize {
        self.len.div_ceil(CODE_BLOCK)
    }

    /// Append one token's codes.
    pub fn push(&mut self, token_codes: &[u16]) {
        assert_eq!(token_codes.len(), self.cols.len());
        let new_block = self.len.is_multiple_of(CODE_BLOCK);
        for (((col, mx), bm), &c) in self
            .cols
            .iter_mut()
            .zip(self.max_code.iter_mut())
            .zip(self.block_max.iter_mut())
            .zip(token_codes)
        {
            col.push(c);
            *mx = (*mx).max(c);
            if new_block {
                bm.push(c);
            } else {
                let last = bm.last_mut().expect("non-empty block index");
                *last = (*last).max(c);
            }
        }
        self.len += 1;
    }

    /// Raw storage in *bits* at `b` bits per code (what actually crosses
    /// PCIe; in-memory we hold u16 for simplicity).
    pub fn wire_bits(&self, b: u32) -> usize {
        self.len * self.cols.len() * b as usize
    }
}

/// A trained product quantizer for one (layer, head) key space.
///
/// ```
/// use pqc_pq::{PqCodebook, PqConfig};
/// use pqc_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::new(1);
/// let keys = Matrix::randn(256, 32, 1.0, &mut rng);          // (s, d_h)
/// let cfg = PqConfig { m: 2, b: 6, max_iters: 10, seed: 1 }; // paper default
/// let (book, codes) = PqCodebook::train(&keys, cfg);
/// assert_eq!(codes.len(), 256);
/// // Codes cost m·b = 12 bits/token vs 32·16 = 512 bits of FP16 keys.
/// assert!(cfg.comm_ratio(32) < 0.03);
/// // Reconstruction approximates the original key.
/// let approx = book.reconstruct(&codes.token(0));
/// assert_eq!(approx.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct PqCodebook {
    cfg: PqConfig,
    /// Dimension of the full key vector.
    dh: usize,
    /// Dimension of each sub-space (`dh / m`).
    dm: usize,
    /// One `(k_c, dm)` centroid matrix per sub-space.
    centroids: Vec<Matrix>,
    /// `‖centroid‖²` per sub-space per centroid, cached at train time so the
    /// eviction-path nearest-centroid assignment runs the batched
    /// `‖c‖² − 2·x·c` formulation without recomputing norms.
    cent_norms: Vec<Vec<f32>>,
    /// K-Means iterations actually run, per sub-space (diagnostics).
    iters_run: Vec<usize>,
    /// Total clustering inertia (diagnostics).
    inertia: f64,
}

impl PqCodebook {
    /// Train a codebook from a `(s, dh)` key matrix and encode all rows.
    ///
    /// Panics if `dh` is not divisible by `m` or the key matrix is empty —
    /// both are configuration errors, not runtime conditions.
    pub fn train(keys: &Matrix, cfg: PqConfig) -> (Self, PqCodes) {
        let (s, dh) = keys.shape();
        assert!(s > 0, "cannot train PQ on zero keys");
        assert!(cfg.m > 0 && dh % cfg.m == 0, "dh={dh} not divisible by m={}", cfg.m);
        let dm = dh / cfg.m;
        let k = cfg.centroids_per_subspace();

        // Sub-space clustering. Each sub-space is independent; run them on
        // scoped threads, matching the paper's m·h_kv parallel CPU processes.
        let subviews: Vec<Matrix> = (0..cfg.m).map(|j| subspace_view(keys, j, dm)).collect();
        let mut results: Vec<Option<crate::kmeans::KMeansResult>> = (0..cfg.m).map(|_| None).collect();
        let subspace_cfg = |j: usize| KMeansConfig {
            k,
            max_iters: cfg.max_iters,
            tol: 1e-4,
            seed: cfg.seed.wrapping_add(j as u64).wrapping_mul(0x9E37_79B9),
        };
        if cfg.m > 1 && s >= 1024 {
            std::thread::scope(|scope| {
                for (j, slot) in results.iter_mut().enumerate() {
                    let view = &subviews[j];
                    let kcfg = subspace_cfg(j);
                    scope.spawn(move || {
                        *slot = Some(kmeans(view, &kcfg));
                    });
                }
            });
        } else {
            for (j, slot) in results.iter_mut().enumerate() {
                *slot = Some(kmeans(&subviews[j], &subspace_cfg(j)));
            }
        }

        let mut centroids = Vec::with_capacity(cfg.m);
        let mut cent_norms = Vec::with_capacity(cfg.m);
        let mut iters_run = Vec::with_capacity(cfg.m);
        let mut inertia = 0.0;
        let mut cols = Vec::with_capacity(cfg.m);
        for res in results {
            let res = res.expect("kmeans result missing");
            // Each sub-space's assignments become one SoA code column as-is.
            cols.push(res.assignments.iter().map(|&a| a as u16).collect());
            inertia += res.inertia;
            iters_run.push(res.iters_run);
            let mut norms = Vec::new();
            pqc_tensor::row_sq_norms_into(&res.centroids, &mut norms);
            cent_norms.push(norms);
            centroids.push(res.centroids);
        }
        let codes = PqCodes::from_columns(cols);

        (Self { cfg, dh, dm, centroids, cent_norms, iters_run, inertia }, codes)
    }

    /// The configuration this codebook was trained with.
    pub fn config(&self) -> PqConfig {
        self.cfg
    }

    /// Full key dimension.
    pub fn dh(&self) -> usize {
        self.dh
    }

    /// Sub-space dimension.
    pub fn dm(&self) -> usize {
        self.dm
    }

    /// Centroid matrix of sub-space `j` (`k_c x dm`).
    pub fn centroids(&self, j: usize) -> &Matrix {
        &self.centroids[j]
    }

    /// Iterations K-Means actually ran per sub-space.
    pub fn iters_run(&self) -> &[usize] {
        &self.iters_run
    }

    /// Total construction inertia (sum over sub-spaces).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Assign PQ codes to a single new key vector (nearest centroid per
    /// sub-space). This is the decode-phase path for tokens evicted from the
    /// local window (Algorithm 2, line 4).
    pub fn assign(&self, key: &[f32]) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.cfg.m);
        self.assign_into(key, &mut out);
        out
    }

    /// [`Self::assign`] into a caller-owned buffer (cleared first), using the
    /// cached centroid norms so the per-sub-space argmin is a batched
    /// `‖c‖² − 2·x·c` scan over unrolled dot products. Decode-loop eviction
    /// encoding allocates nothing after warm-up.
    pub fn assign_into(&self, key: &[f32], out: &mut Vec<u16>) {
        assert_eq!(key.len(), self.dh);
        out.clear();
        for j in 0..self.cfg.m {
            let sub = &key[j * self.dm..(j + 1) * self.dm];
            let (best, _) =
                pqc_tensor::nearest_centroid_cached(sub, &self.centroids[j], &self.cent_norms[j]);
            out.push(best as u16);
        }
    }

    /// Reconstruct the approximate key vector of a token from its codes.
    pub fn reconstruct(&self, token_codes: &[u16]) -> Vec<f32> {
        assert_eq!(token_codes.len(), self.cfg.m);
        let mut out = Vec::with_capacity(self.dh);
        for (j, &c) in token_codes.iter().enumerate() {
            out.extend_from_slice(self.centroids[j].row(c as usize));
        }
        out
    }

    /// Memory footprint of the centroid tables in bytes (FP16 accounting, as
    /// the paper stores centroids on GPU): `m · k_c · dm · 2`.
    pub fn centroid_bytes(&self) -> usize {
        self.centroids.iter().map(|c| c.rows() * c.cols() * 2).sum()
    }
}

/// Extract the `(s, dm)` sub-matrix of sub-space `j`.
fn subspace_view(keys: &Matrix, j: usize, dm: usize) -> Matrix {
    let s = keys.rows();
    let mut out = Matrix::zeros(s, dm);
    for i in 0..s {
        let src = &keys.row(i)[j * dm..(j + 1) * dm];
        out.row_mut(i).copy_from_slice(src);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqc_tensor::{squared_l2, Rng64};

    fn random_keys(s: usize, dh: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        Matrix::randn(s, dh, 1.0, &mut rng)
    }

    #[test]
    fn train_shapes() {
        let keys = random_keys(200, 32, 1);
        let cfg = PqConfig { m: 4, b: 4, max_iters: 10, seed: 1 };
        let (book, codes) = PqCodebook::train(&keys, cfg);
        assert_eq!(book.dm(), 8);
        assert_eq!(codes.len(), 200);
        assert_eq!(codes.m(), 4);
        for j in 0..4 {
            assert_eq!(book.centroids(j).shape(), (16, 8));
        }
    }

    #[test]
    fn training_converges_and_is_reproducible_on_fixed_seed_matrix() {
        // With a generous iteration budget, Lloyd iterations on a fixed-seed
        // matrix must hit the early-stop tolerance well before the cap, and
        // re-training with the identical config must reproduce the codebook
        // bit-for-bit (inertia, iteration counts, and all codes).
        let keys = random_keys(512, 16, 7);
        let cfg = PqConfig { m: 2, b: 4, max_iters: 200, seed: 7 };
        let (book, codes) = PqCodebook::train(&keys, cfg);
        for (j, &it) in book.iters_run().iter().enumerate() {
            assert!(it < cfg.max_iters, "sub-space {j} never converged ({it} iters)");
        }
        assert!(book.inertia().is_finite() && book.inertia() >= 0.0);

        // A tighter budget can only leave inertia the same or worse.
        let (short, _) =
            PqCodebook::train(&keys, PqConfig { m: 2, b: 4, max_iters: 1, seed: 7 });
        assert!(
            book.inertia() <= short.inertia() + 1e-6,
            "more iterations worsened inertia: {} vs {}",
            book.inertia(),
            short.inertia()
        );

        let (book2, codes2) = PqCodebook::train(&keys, cfg);
        assert_eq!(book.inertia(), book2.inertia(), "inertia not reproducible");
        assert_eq!(book.iters_run(), book2.iters_run(), "iteration counts differ");
        for i in 0..codes.len() {
            assert_eq!(codes.token(i), codes2.token(i), "codes differ at token {i}");
        }
    }

    #[test]
    fn codes_in_range() {
        let keys = random_keys(300, 16, 2);
        let cfg = PqConfig { m: 2, b: 3, max_iters: 8, seed: 2 };
        let (_, codes) = PqCodebook::train(&keys, cfg);
        for i in 0..codes.len() {
            for c in codes.token(i) {
                assert!(c < 8, "code {c} out of range for b=3");
            }
        }
    }

    #[test]
    fn reconstruction_better_than_random_centroid() {
        let keys = random_keys(400, 32, 3);
        let cfg = PqConfig { m: 4, b: 6, max_iters: 15, seed: 3 };
        let (book, codes) = PqCodebook::train(&keys, cfg);
        let mut err_assigned = 0.0f64;
        let mut err_fixed = 0.0f64;
        for i in 0..keys.rows() {
            let rec = book.reconstruct(&codes.token(i));
            err_assigned += squared_l2(keys.row(i), &rec) as f64;
            // Compare against always using centroid 0 in every sub-space.
            let fixed = book.reconstruct(&[0u16; 4]);
            err_fixed += squared_l2(keys.row(i), &fixed) as f64;
        }
        assert!(
            err_assigned < err_fixed * 0.8,
            "assigned {err_assigned} vs fixed {err_fixed}"
        );
    }

    #[test]
    fn assign_matches_training_codes() {
        // Re-assigning a training vector must give codes at least as close
        // as the training assignment (they should be identical since both
        // pick the nearest centroid).
        let keys = random_keys(128, 16, 4);
        let cfg = PqConfig { m: 2, b: 4, max_iters: 12, seed: 4 };
        let (book, codes) = PqCodebook::train(&keys, cfg);
        for i in 0..keys.rows() {
            let re = book.assign(keys.row(i));
            let trained_rec = book.reconstruct(&codes.token(i));
            let re_rec = book.reconstruct(&re);
            let d_train = squared_l2(keys.row(i), &trained_rec);
            let d_re = squared_l2(keys.row(i), &re_rec);
            assert!(d_re <= d_train + 1e-5, "token {i}: reassign worse");
        }
    }

    #[test]
    fn m1_single_subspace_works() {
        let keys = random_keys(100, 8, 5);
        let cfg = PqConfig { m: 1, b: 5, max_iters: 10, seed: 5 };
        let (book, codes) = PqCodebook::train(&keys, cfg);
        assert_eq!(book.dm(), 8);
        assert_eq!(codes.m(), 1);
    }

    #[test]
    fn comm_ratio_matches_paper_formula() {
        // Paper §4.1.3: m=2, b=6, dh=128 -> 12/2048 = (b/8)*(1/128) <= 1/128.
        let cfg = PqConfig { m: 2, b: 6, max_iters: 1, seed: 0 };
        let r = cfg.comm_ratio(128);
        assert!((r - 12.0 / 2048.0).abs() < 1e-12);
        // m=4, b=8, dh=128 -> 32/2048 = 1/64.
        let cfg2 = PqConfig { m: 4, b: 8, max_iters: 1, seed: 0 };
        assert!((cfg2.comm_ratio(128) - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn code_bytes_rounds_up() {
        let cfg = PqConfig { m: 2, b: 6, max_iters: 1, seed: 0 };
        // 2 codes * 6 bits = 12 bits -> 2 bytes per token.
        assert_eq!(cfg.code_bytes(1), 2);
        assert_eq!(cfg.code_bytes(100), 150);
    }

    #[test]
    fn parallel_and_serial_training_agree() {
        // s >= 1024 triggers the threaded path; the result must be
        // identical to the serial path because seeds are per-sub-space.
        let keys = random_keys(1100, 16, 6);
        let cfg = PqConfig { m: 4, b: 4, max_iters: 6, seed: 6 };
        let (book_a, codes_a) = PqCodebook::train(&keys, cfg);
        let small = keys.slice_rows(0, 1100); // same data, force clone
        let (book_b, codes_b) = PqCodebook::train(&small, cfg);
        assert_eq!(codes_a, codes_b);
        for j in 0..4 {
            assert_eq!(book_a.centroids(j), book_b.centroids(j));
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_dh_panics() {
        let keys = random_keys(10, 10, 7);
        let cfg = PqConfig { m: 3, b: 2, max_iters: 1, seed: 0 };
        let _ = PqCodebook::train(&keys, cfg);
    }
}
