//! Lloyd's K-Means with k-means++ seeding and empty-cluster repair.
//!
//! PQ construction (paper §3, Step ❷) runs one K-Means per sub-space per
//! layer per KV head. The iteration count is externally budgeted — the
//! adaptive controller (§3.3) clips it so clustering never blocks GPU
//! compute — so `fit` takes an explicit `max_iters` and reports how many
//! iterations actually ran and the final inertia.

use pqc_tensor::{squared_l2, AssignScratch, Matrix, Rng64};

/// Outcome of a K-Means fit.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k x d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster id per input row.
    pub assignments: Vec<u32>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Lloyd iterations actually executed (may stop early on convergence).
    pub iters_run: usize,
}

/// Configuration for a K-Means fit.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters requested; silently capped at the number of rows.
    pub k: usize,
    /// Maximum Lloyd iterations (0 means "seed only, one assignment pass").
    pub max_iters: usize,
    /// Stop early when inertia improves by less than this relative amount.
    pub tol: f64,
    /// Seed for the k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 16, max_iters: 25, tol: 1e-4, seed: 0 }
    }
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional to
/// squared distance from the nearest chosen centroid.
fn seed_centroids(data: &Matrix, k: usize, rng: &mut Rng64) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.below(n);
    centroids.copy_row_from(0, data.row(first));

    let mut dists: Vec<f64> = (0..n)
        .map(|i| squared_l2(data.row(i), centroids.row(0)) as f64)
        .collect();

    for c in 1..k {
        let total: f64 = dists.iter().sum();
        let idx = if total <= 0.0 {
            // All points identical to chosen centroids; pick anything.
            rng.below(n)
        } else {
            rng.weighted(&dists)
        };
        centroids.copy_row_from(c, data.row(idx));
        for (i, dist) in dists.iter_mut().enumerate() {
            let nd = squared_l2(data.row(i), centroids.row(c)) as f64;
            if nd < *dist {
                *dist = nd;
            }
        }
    }
    centroids
}

/// Assign every row to its nearest centroid using the blocked
/// `‖x‖² − 2·X·Cᵀ + ‖c‖²` kernel; scratch is reused across Lloyd
/// iterations. Returns total inertia.
fn assign(
    data: &Matrix,
    centroids: &Matrix,
    assignments: &mut [u32],
    scratch: &mut AssignScratch,
) -> f64 {
    scratch.assign(data, centroids, assignments)
}

/// Recompute centroids as the mean of their members; repair empty clusters by
/// re-seeding them at the point farthest from its centroid.
fn update(data: &Matrix, assignments: &[u32], k: usize) -> Matrix {
    let d = data.cols();
    let mut centroids = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &a) in assignments.iter().enumerate() {
        counts[a as usize] += 1;
        let crow = centroids.row_mut(a as usize);
        for (o, v) in crow.iter_mut().zip(data.row(i).iter()) {
            *o += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f32;
            for v in centroids.row_mut(c) {
                *v *= inv;
            }
        }
    }
    // Repair empties: steal the point with the largest distance to its
    // (non-empty) centroid. Neither the non-empty centroids nor the
    // eligibility mask change during the repair pass, so the farthest
    // eligible point is computed once (one O(n·d) sweep) instead of being
    // rescanned per empty cluster.
    if counts.contains(&0) {
        let mut far_i = 0;
        let mut far_d = -1.0f32;
        for i in 0..data.rows() {
            let a = assignments[i] as usize;
            if counts[a] <= 1 {
                continue; // don't empty another cluster
            }
            let dist = squared_l2(data.row(i), centroids.row(a));
            if dist > far_d {
                far_d = dist;
                far_i = i;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                centroids.copy_row_from(c, data.row(far_i));
                counts[c] = 1;
            }
        }
    }
    centroids
}

/// Run K-Means on the rows of `data`.
///
/// Always performs the k-means++ seeding plus one assignment pass, then up to
/// `max_iters` Lloyd iterations with early stop at relative tolerance `tol`.
pub fn kmeans(data: &Matrix, cfg: &KMeansConfig) -> KMeansResult {
    let n = data.rows();
    assert!(n > 0, "kmeans on empty data");
    let k = cfg.k.min(n).max(1);
    let mut rng = Rng64::new(cfg.seed);

    let mut centroids = seed_centroids(data, k, &mut rng);
    let mut assignments = vec![0u32; n];
    // One scratch for every assignment pass of this fit: the blocked GEMM
    // panel and centroid norms are allocated once and reused per iteration.
    let mut scratch = AssignScratch::new();
    let mut inertia = assign(data, &centroids, &mut assignments, &mut scratch);
    let mut iters_run = 0;

    for _ in 0..cfg.max_iters {
        centroids = update(data, &assignments, k);
        let new_inertia = assign(data, &centroids, &mut assignments, &mut scratch);
        iters_run += 1;
        let improved = inertia - new_inertia;
        let done = improved <= cfg.tol * inertia.max(1e-12);
        inertia = new_inertia;
        if done {
            break;
        }
    }

    KMeansResult { centroids, assignments, inertia, iters_run }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs(per: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let centers = [(-10.0f32, -10.0), (0.0, 10.0), (10.0, -5.0)];
        let mut data = Matrix::zeros(per * 3, 2);
        for (b, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..per {
                let r = b * per + i;
                data.set(r, 0, cx + rng.normal_f32(0.0, 0.5));
                data.set(r, 1, cy + rng.normal_f32(0.0, 0.5));
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(50, 1);
        let res = kmeans(&data, &KMeansConfig { k: 3, max_iters: 50, tol: 1e-6, seed: 2 });
        // Each blob should map to exactly one cluster.
        for b in 0..3 {
            let first = res.assignments[b * 50];
            for i in 0..50 {
                assert_eq!(res.assignments[b * 50 + i], first, "blob {b} split");
            }
        }
        // And the three blobs should use three distinct clusters.
        let mut ids: Vec<u32> = (0..3).map(|b| res.assignments[b * 50]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        assert!(res.inertia < 150.0 * 2.0, "inertia {}", res.inertia);
    }

    #[test]
    fn inertia_nonincreasing_with_more_iters() {
        let data = blobs(30, 3);
        let mut last = f64::INFINITY;
        for iters in [0usize, 1, 2, 5, 20] {
            let res = kmeans(&data, &KMeansConfig { k: 5, max_iters: iters, tol: 0.0, seed: 7 });
            assert!(
                res.inertia <= last + 1e-6,
                "inertia rose at iters={iters}: {} > {last}",
                res.inertia
            );
            last = res.inertia;
        }
    }

    #[test]
    fn k_capped_at_n() {
        let data = blobs(1, 4); // 3 points
        let res = kmeans(&data, &KMeansConfig { k: 64, max_iters: 5, tol: 0.0, seed: 1 });
        assert_eq!(res.centroids.rows(), 3);
        assert!(res.inertia < 1e-6);
    }

    #[test]
    fn zero_iters_still_assigns() {
        let data = blobs(10, 5);
        let res = kmeans(&data, &KMeansConfig { k: 3, max_iters: 0, tol: 0.0, seed: 1 });
        assert_eq!(res.assignments.len(), 30);
        assert_eq!(res.iters_run, 0);
        assert!(res.inertia.is_finite());
    }

    #[test]
    fn identical_points_no_panic() {
        let data = Matrix::from_vec(8, 2, vec![1.0; 16]);
        let res = kmeans(&data, &KMeansConfig { k: 4, max_iters: 10, tol: 0.0, seed: 9 });
        assert!(res.inertia < 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data = blobs(20, 6);
        let cfg = KMeansConfig { k: 4, max_iters: 10, tol: 0.0, seed: 42 };
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn all_clusters_nonempty_after_repair() {
        // Fewer distinct points than clusters would love to stay empty.
        let mut data = Matrix::zeros(20, 2);
        for i in 0..20 {
            data.set(i, 0, (i % 4) as f32 * 10.0);
        }
        let res = kmeans(&data, &KMeansConfig { k: 4, max_iters: 10, tol: 0.0, seed: 3 });
        let mut seen = vec![false; res.centroids.rows()];
        for &a in &res.assignments {
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "assignments {:?}", res.assignments);
    }
}
