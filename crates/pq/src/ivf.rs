//! IVF (inverted-file) coarse quantization — the paper's §5 extension,
//! wired into the decode hot path.
//!
//! "Other retrieval techniques, such as IVF \[48\] ... could potentially
//! contribute to more efficient LLM inference." IVF partitions the keys into
//! `n_list` coarse cells by K-Means; a query then scores only the tokens in
//! its `n_probe` nearest cells instead of all `s` tokens, cutting ADC work
//! from O(s·m) to O(s·m·n_probe/n_list) at some recall cost.
//!
//! The index stores **per-cell SoA code columns** (each cell owns a
//! [`PqCodes`] holding its members' codes in the same subspace-major layout
//! the fused scan wants, plus an ascending token-id list), so probing a cell
//! is the same L1-resident sequential column walk as the flat scan — and the
//! per-[`CODE_BLOCK`]-block max-code bound composes with routing: inside a
//! probed cell, blocks that cannot beat the running k-th-best threshold are
//! skipped exactly as in [`crate::adc::AdcTable::score_and_select_into`].
//! See `score_and_select_ivf_into` in [`crate::adc`] and the "IVF-routed
//! selection" section of EXPERIMENTS.md.

use crate::adc::AdcTable;
use crate::codebook::{PqCodebook, PqCodes};
use crate::kmeans::{kmeans, KMeansConfig};
use pqc_tensor::{
    dot, nearest_centroid_cached, row_sq_norms_into, AssignScratch, Matrix, TopK,
};

/// How the decode-step selector routes retrieval.
///
/// Threaded from `SessionConfig` through `PqCachePolicyConfig` down to
/// `PqRetriever`: `Exact` runs the flat fused score-and-select over all
/// middle tokens; `Probe(n_probe)` scores coarse centroids first and scans
/// only the `n_probe` nearest cells. `Probe(n)` with `n >= n_list` scans
/// every cell and is **bit-identical** to `Exact` (enforced by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum IvfMode {
    /// Flat fused scan over every token (the PR 4 path).
    #[default]
    Exact,
    /// IVF routing: scan only the given number of coarse cells per query.
    Probe(usize),
}

impl IvfMode {
    /// Whether this mode routes through the IVF tier.
    pub fn is_probe(&self) -> bool {
        matches!(self, Self::Probe(_))
    }

    /// The probe width, if routing is on.
    pub fn n_probe(&self) -> Option<usize> {
        match self {
            Self::Exact => None,
            Self::Probe(n) => Some(*n),
        }
    }
}

/// IVF configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse cells.
    pub n_list: usize,
    /// Cells probed per query (the default for [`IvfIndex::probe`] /
    /// [`IvfIndex::search`]; the fused path takes `n_probe` explicitly).
    pub n_probe: usize,
    /// Coarse K-Means iterations.
    pub max_iters: usize,
    /// Seed for coarse clustering.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self { n_list: 16, n_probe: 4, max_iters: 10, seed: 0x1BF }
    }
}

/// Coarse training sample cap: above this many keys the coarse K-Means runs
/// on a strided sample and the full set is routed with one blocked
/// assignment pass — the FAISS-style recipe that keeps build time flat in
/// `s` (routing is one `‖x‖² − 2XCᵀ + ‖c‖²` sweep).
const COARSE_TRAIN_CAP: usize = 16_384;

/// Greatest common divisor (Euclid), for the coprime sampling step.
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One inverted list: ascending token ids plus their PQ codes in the shared
/// SoA column layout (so the ADC scan machinery applies unchanged).
#[derive(Debug, Clone)]
struct IvfCell {
    /// Member token ids, strictly ascending.
    ids: Vec<u32>,
    /// Members' PQ codes, subspace-major, row `r` codes token `ids[r]`.
    codes: PqCodes,
}

impl IvfCell {
    fn new(m: usize) -> Self {
        Self { ids: Vec::new(), codes: PqCodes::new(m) }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn codes(&self) -> &PqCodes {
        &self.codes
    }

    fn push(&mut self, id: u32, token_codes: &[u16]) {
        debug_assert!(self.ids.last().is_none_or(|&last| last < id), "ids must ascend");
        self.ids.push(id);
        self.codes.push(token_codes);
    }
}

/// An inverted-file index over token keys, layered on top of PQ codes.
///
/// ```
/// use pqc_pq::{IvfConfig, IvfIndex, PqCodebook, PqConfig};
/// use pqc_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::new(2);
/// let keys = Matrix::randn(512, 16, 1.0, &mut rng);
/// let (book, codes) = PqCodebook::train(&keys, PqConfig { m: 2, b: 5, max_iters: 8, seed: 2 });
/// let ivf = IvfIndex::build(&keys, &codes, IvfConfig { n_list: 16, n_probe: 4, max_iters: 8, seed: 3 });
/// let q: Vec<f32> = keys.row(42).to_vec();
/// let top = ivf.search(&book, &q, 10);
/// assert!(top.len() <= 10);
/// // Only ~n_probe/n_list of tokens were ADC-scored.
/// assert!(ivf.scan_fraction(&q, 512) < 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct IvfIndex {
    cfg: IvfConfig,
    /// `(n_list, dh)` coarse centroids.
    coarse: Matrix,
    /// `‖centroid‖²` per coarse cell, cached so append-time routing runs the
    /// batched `‖c‖² − 2·x·c` argmin.
    coarse_norms: Vec<f32>,
    /// Inverted lists (ids + SoA codes per cell).
    cells: Vec<IvfCell>,
    /// Total tokens indexed (cells partition `0..len`).
    len: usize,
    /// Tokens appended since build/rebalance — the drift meter behind
    /// [`IvfIndex::cell_imbalance`]-driven maintenance.
    appended: usize,
}

impl IvfIndex {
    /// Build the index from raw keys and their PQ codes (one code row per
    /// key row, same order).
    ///
    /// Coarse centroids are trained on at most [`COARSE_TRAIN_CAP`] strided
    /// sample rows; the full key set is then routed with one blocked
    /// assignment pass, so build cost stays near-linear in `s`.
    pub fn build(keys: &Matrix, codes: &PqCodes, cfg: IvfConfig) -> Self {
        assert!(cfg.n_list >= 1 && cfg.n_probe >= 1);
        assert_eq!(keys.rows(), codes.len(), "one code row per key row");
        let s = keys.rows();
        let kcfg = KMeansConfig { k: cfg.n_list, max_iters: cfg.max_iters, tol: 1e-4, seed: cfg.seed };
        let (centroids, assignments) = if s > COARSE_TRAIN_CAP {
            // Weyl-sequence sample, not a plain stride: key streams are
            // often periodic (interleaved sessions, repeated templates),
            // and a stride sharing a factor with the period would sample a
            // single phase of it. The step is forced coprime to `s`, so
            // `j ↦ j·step mod s` is a bijection: the sample hits every
            // residue class and contains no duplicate rows.
            let mut step = 0x9E37_79B9_7F4A_7C15_usize % s;
            while gcd(step, s) != 1 {
                step += 1;
            }
            let sample_ids: Vec<usize> =
                (0..COARSE_TRAIN_CAP).map(|j| j.wrapping_mul(step) % s).collect();
            let res = kmeans(&keys.gather_rows(&sample_ids), &kcfg);
            let mut assignments = vec![0u32; s];
            AssignScratch::new().assign(keys, &res.centroids, &mut assignments);
            (res.centroids, assignments)
        } else {
            let res = kmeans(keys, &kcfg);
            (res.centroids, res.assignments)
        };
        let n_list = centroids.rows();
        let mut cells = vec![IvfCell::new(codes.m()); n_list];
        let mut buf = Vec::new();
        for (i, &a) in assignments.iter().enumerate() {
            codes.token_into(i, &mut buf);
            cells[a as usize].push(i as u32, &buf);
        }
        let mut coarse_norms = Vec::new();
        row_sq_norms_into(&centroids, &mut coarse_norms);
        Self { cfg, coarse: centroids, coarse_norms, cells, len: s, appended: 0 }
    }

    /// Number of coarse cells actually built.
    pub fn n_list(&self) -> usize {
        self.cells.len()
    }

    /// Total tokens indexed (the cells partition `0..len`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sub-space count of the stored codes.
    pub fn m(&self) -> usize {
        self.cells.first().map_or(0, |c| c.codes().m())
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> IvfConfig {
        self.cfg
    }

    /// One inverted list: `(ascending token ids, SoA codes)` — row `r` of
    /// the codes belongs to token `ids[r]`. Exposed for the fused IVF scan
    /// and for equivalence tests.
    pub fn cell(&self, c: usize) -> (&[u32], &PqCodes) {
        let cell = &self.cells[c];
        (&cell.ids, cell.codes())
    }

    /// Tokens appended since build (or the last rebalance) — appended tokens
    /// are routed against the build-time coarse centroids, so this is the
    /// drift meter that should trigger [`IvfIndex::cell_imbalance`] checks.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Append one token: routed to its nearest coarse cell (cached-norm
    /// batched argmin — no allocation beyond amortised list growth). The
    /// token id must exceed every id already present (decode appends are
    /// monotone), keeping every cell's id list ascending.
    pub fn append_token(&mut self, token_id: usize, key: &[f32], token_codes: &[u16]) {
        assert!(token_id >= self.len, "append ids must be monotone (got {token_id}, len {})", self.len);
        let (best, _) = nearest_centroid_cached(key, &self.coarse, &self.coarse_norms);
        self.cells[best].push(token_id as u32, token_codes);
        self.len = token_id + 1;
        self.appended += 1;
    }

    /// Inner-product scores of the query against every coarse centroid,
    /// written into `out` (cleared first). O(n_list · dh).
    pub fn score_cells_into(&self, query: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.cells.len());
        for c in 0..self.coarse.rows() {
            out.push(dot(query, self.coarse.row(c)));
        }
    }

    /// Cell-length imbalance: `max / mean` list length (1.0 is perfectly
    /// balanced, 0.0 when empty). Appended tokens routed against stale
    /// centroids show up here — the cheap signal for when a
    /// [`IvfIndex::rebalance`] pays off.
    pub fn cell_imbalance(&self) -> f64 {
        if self.len == 0 || self.cells.is_empty() {
            return 0.0;
        }
        let max = self.cells.iter().map(IvfCell::len).max().unwrap_or(0);
        let mean = self.len as f64 / self.cells.len() as f64;
        max as f64 / mean
    }

    /// Bounded re-balance: up to `max_cells` rounds of "split the fullest
    /// cell, recycle the emptiest". Each round (a) re-routes the emptiest
    /// cell's members to their next-nearest centroid, (b) 2-means-splits the
    /// fullest cell's members (keys supplied by the caller, row = token id),
    /// and (c) installs the two split centroids over the two freed slots.
    /// Only the two chosen cells' members *move*; the dominant cost per
    /// round is O((max + min cell) · dh) for the split and re-routing,
    /// plus the destination-cell merges for the (few, small-cell) evicted
    /// members — appends when their ids exceed the destination's tail
    /// (the common case for decode-appended tokens), a rebuild of that
    /// destination otherwise. This is maintenance-path code: it may
    /// allocate, unlike the per-step scan.
    ///
    /// Returns the number of tokens that changed cell. Cells always
    /// partition `0..len` and keep ascending id lists, so routed retrieval
    /// stays exact at `n_probe = n_list` across rebalances. Rounds stop
    /// early once `max/mean < 1.5` (nothing worth fixing).
    pub fn rebalance(&mut self, keys: &Matrix, max_cells: usize) -> usize {
        assert!(keys.rows() >= self.len, "need one key row per indexed token");
        let mut moved = 0usize;
        if self.cells.len() < 2 || self.len == 0 {
            return 0;
        }
        for round in 0..max_cells {
            let mean = self.len as f64 / self.cells.len() as f64;
            let big = (0..self.cells.len()).max_by_key(|&c| self.cells[c].len()).expect("cells");
            let small = (0..self.cells.len()).min_by_key(|&c| self.cells[c].len()).expect("cells");
            if big == small
                || self.cells[big].len() < 2
                || (self.cells[big].len() as f64) < 1.5 * mean
            {
                break;
            }
            moved += self.split_round(keys, big, small, round);
        }
        self.appended = 0;
        moved
    }

    /// One rebalance round: drain `small` into next-nearest cells, 2-means
    /// `big`'s members, split them over the `big`/`small` slots.
    fn split_round(&mut self, keys: &Matrix, big: usize, small: usize, round: usize) -> usize {
        let m = self.m();
        let mut moved = 0usize;
        // (a) Evict the emptiest cell's members to their next-nearest cell
        // (excluding `small` itself, whose centroid is being recycled).
        let evicted = std::mem::replace(&mut self.cells[small], IvfCell::new(m));
        let evicted_codes = evicted.codes();
        let mut pending: Vec<(usize, u32, Vec<u16>)> = Vec::with_capacity(evicted.len());
        for (r, &id) in evicted.ids.iter().enumerate() {
            let key = keys.row(id as usize);
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for c in 0..self.coarse.rows() {
                if c == small {
                    continue;
                }
                let d = self.coarse_norms[c] - 2.0 * dot(key, self.coarse.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            pending.push((best, id, (0..m).map(|j| evicted_codes.code(r, j)).collect()));
            moved += 1;
        }
        // (b) 2-means over the fullest cell's members.
        let donor = std::mem::replace(&mut self.cells[big], IvfCell::new(m));
        let donor_keys: Vec<usize> = donor.ids.iter().map(|&i| i as usize).collect();
        let sub = keys.gather_rows(&donor_keys);
        let split = kmeans(
            &sub,
            &KMeansConfig {
                k: 2,
                max_iters: self.cfg.max_iters.max(4),
                tol: 1e-4,
                seed: self.cfg.seed.wrapping_add(0xBA1A).wrapping_add(round as u64),
            },
        );
        // (c) Install the split centroids over the freed slots and deal
        // the donor members to whichever half claimed them (ids stay
        // ascending: the donor list was ascending and we filter in order).
        let halves = [big, small];
        for (h, &slot) in halves.iter().enumerate() {
            let row = if split.centroids.rows() > h { h } else { 0 };
            self.coarse.copy_row_from(slot, split.centroids.row(row));
            self.coarse_norms[slot] = dot(split.centroids.row(row), split.centroids.row(row));
        }
        let donor_codes = donor.codes();
        let mut buf = Vec::new();
        for (r, &id) in donor.ids.iter().enumerate() {
            let half = *split.assignments.get(r).unwrap_or(&0) as usize;
            let slot = halves[half.min(1)];
            donor_codes.token_into(r, &mut buf);
            self.cells[slot].push(id, &buf);
            if slot != big {
                moved += 1;
            }
        }
        // Merge the evicted members into their destinations (sorted insert:
        // group by destination, then merge the ascending run).
        pending.sort_by_key(|&(dest, id, _)| (dest, id));
        let mut i = 0usize;
        while i < pending.len() {
            let dest = pending[i].0;
            let mut j = i;
            while j < pending.len() && pending[j].0 == dest {
                j += 1;
            }
            self.merge_into_cell(dest, &pending[i..j]);
            i = j;
        }
        moved
    }

    /// Merge an ascending run of `(dest, id, codes)` members into cell
    /// `dest`, keeping the id list ascending. When every incoming id
    /// exceeds the destination's tail (decode-appended tokens carry the
    /// largest ids, so this is the common case) the merge is a plain
    /// append; only genuine interleavings pay the full rebuild.
    fn merge_into_cell(&mut self, dest: usize, incoming: &[(usize, u32, Vec<u16>)]) {
        let append_only =
            self.cells[dest].ids.last().is_none_or(|&tail| tail < incoming[0].1);
        if append_only {
            for (_, id, codes) in incoming {
                self.cells[dest].push(*id, codes);
            }
            return;
        }
        let m = self.m();
        let old = std::mem::replace(&mut self.cells[dest], IvfCell::new(m));
        let old_codes = old.codes();
        let mut buf = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < old.ids.len() || b < incoming.len() {
            let take_old =
                b >= incoming.len() || (a < old.ids.len() && old.ids[a] < incoming[b].1);
            if take_old {
                old_codes.token_into(a, &mut buf);
                self.cells[dest].push(old.ids[a], &buf);
                a += 1;
            } else {
                self.cells[dest].push(incoming[b].1, &incoming[b].2);
                b += 1;
            }
        }
    }

    /// The token ids inside the `n_probe` cells nearest to `query` (by
    /// inner product, matching the attention-scoring geometry), in
    /// cell-rank order. Allocating convenience; the decode path streams
    /// cells directly through the fused scan instead.
    pub fn probe(&self, query: &[f32]) -> Vec<usize> {
        let mut scores = Vec::new();
        self.score_cells_into(query, &mut scores);
        let mut cells = Vec::new();
        // The shared O(n) selector (not the legacy heap) picks the cells.
        TopK::new().select_into(&scores, self.cfg.n_probe.min(self.cells.len()), &mut cells);
        let mut out = Vec::new();
        for c in cells {
            out.extend(self.cells[c].ids.iter().map(|&i| i as usize));
        }
        out
    }

    /// IVF-PQ top-k: ADC-score only the probed candidates, through the
    /// fused routed scan (threshold pruning included). Allocating
    /// convenience wrapper; hot paths hold a `PqRetriever` and call
    /// [`crate::PqRetriever::score_and_select_ivf_into`].
    pub fn search(&self, book: &PqCodebook, query: &[f32], k: usize) -> Vec<usize> {
        let table = AdcTable::build(book, query);
        let mut topk = TopK::new();
        let mut scratch = crate::adc::IvfScratch::default();
        let mut block_scores = Vec::new();
        let mut out = Vec::new();
        table.score_and_select_ivf_into(
            self,
            query,
            self.len,
            k,
            self.cfg.n_probe,
            &mut topk,
            &mut scratch,
            &mut block_scores,
            &mut out,
        );
        out
    }

    /// Fraction of tokens scored per query (the ADC-work saving).
    pub fn scan_fraction(&self, query: &[f32], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        self.probe(query).len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::PqConfig;
    use crate::exact_top_k;
    use pqc_tensor::{topk_recall, Rng64};

    fn setup(s: usize, dh: usize, seed: u64) -> (Matrix, PqCodebook, PqCodes) {
        let mut rng = Rng64::new(seed);
        let keys = Matrix::randn(s, dh, 1.0, &mut rng);
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m: 4, b: 6, max_iters: 15, seed });
        (keys, book, codes)
    }

    fn partitioned_ids(ivf: &IvfIndex) -> Vec<usize> {
        let mut all: Vec<usize> = (0..ivf.n_list())
            .flat_map(|c| ivf.cell(c).0.iter().map(|&i| i as usize).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn lists_partition_tokens() {
        let (keys, _, codes) = setup(300, 16, 1);
        let ivf = IvfIndex::build(&keys, &codes, IvfConfig::default());
        assert_eq!(partitioned_ids(&ivf), (0..300).collect::<Vec<_>>());
        assert_eq!(ivf.len(), 300);
        // Cell ids ascend and cell codes mirror the global codes row by row.
        for c in 0..ivf.n_list() {
            let (ids, ccodes) = ivf.cell(c);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "cell {c} ids not ascending");
            for (r, &id) in ids.iter().enumerate() {
                for j in 0..codes.m() {
                    assert_eq!(ccodes.code(r, j), codes.code(id as usize, j));
                }
            }
        }
    }

    #[test]
    fn probing_reduces_scan() {
        let (keys, _, codes) = setup(400, 16, 2);
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list: 16, n_probe: 4, ..Default::default() },
        );
        let mut rng = Rng64::new(9);
        let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let frac = ivf.scan_fraction(&q, 400);
        assert!(frac < 0.7, "scan fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn ivf_ablation_recall_vs_scan() {
        // More probes => more scan => better recall against exact search.
        let (keys, book, codes) = setup(600, 16, 3);
        let mut rng = Rng64::new(10);
        let mut prev_recall = 0.0;
        for n_probe in [1usize, 4, 16] {
            let ivf = IvfIndex::build(
                &keys,
                &codes,
                IvfConfig { n_list: 16, n_probe, max_iters: 10, seed: 5 },
            );
            let mut recall = 0.0;
            let trials = 10;
            let mut rq = rng.fork(n_probe as u64);
            for _ in 0..trials {
                let q: Vec<f32> = (0..16).map(|_| rq.normal_f32(0.0, 1.0)).collect();
                let exact = exact_top_k(&keys, &q, 30);
                let got = ivf.search(&book, &q, 30);
                recall += topk_recall(&exact, &got);
            }
            recall /= trials as f64;
            assert!(recall + 0.12 >= prev_recall, "recall regressed: {recall} vs {prev_recall}");
            prev_recall = prev_recall.max(recall);
        }
        // Probing everything should recover most of plain PQ's recall.
        assert!(prev_recall > 0.5, "full-probe recall {prev_recall}");
    }

    #[test]
    fn append_routes_to_a_cell() {
        let (keys, book, codes) = setup(100, 16, 4);
        let mut ivf = IvfIndex::build(&keys, &codes, IvfConfig::default());
        let before: usize = (0..ivf.n_list()).map(|c| ivf.cell(c).0.len()).sum();
        let appended_codes = book.assign(keys.row(0));
        ivf.append_token(100, keys.row(0), &appended_codes);
        let after: usize = (0..ivf.n_list()).map(|c| ivf.cell(c).0.len()).sum();
        assert_eq!(after, before + 1);
        assert_eq!(ivf.len(), 101);
        assert_eq!(ivf.appended(), 1);
        // The appended token is findable with a query aligned to its key.
        let q: Vec<f32> = keys.row(0).iter().map(|v| v * 2.0).collect();
        assert!(ivf.probe(&q).contains(&100));
    }

    #[test]
    fn skewed_appends_trigger_rebalance() {
        // Build over two well-separated clusters, then append a third,
        // denser cluster: every appended token routes to its nearest *stale*
        // centroid, inflating one cell. The imbalance meter must flag it,
        // and one bounded rebalance round (split fullest / recycle emptiest)
        // must cut the skew while keeping the partition exact.
        let dh = 8;
        let mut rng = Rng64::new(44);
        let mut rows: Vec<f32> = Vec::new();
        let n_seed = 60;
        for i in 0..n_seed {
            let base = if i % 2 == 0 { 4.0 } else { -4.0 };
            for d in 0..dh {
                rows.push(base + 0.1 * rng.normal_f32(0.0, 1.0) + d as f32 * 0.0);
            }
        }
        // Appended cluster near +1.5: nearer to the +4 centroid than -4.
        let n_app = 120;
        for _ in 0..n_app {
            for _ in 0..dh {
                rows.push(1.5 + 0.1 * rng.normal_f32(0.0, 1.0));
            }
        }
        let all_keys = Matrix::from_vec(n_seed + n_app, dh, rows);
        let seed_keys = all_keys.slice_rows(0, n_seed);
        let (book, codes) =
            PqCodebook::train(&all_keys, PqConfig { m: 2, b: 4, max_iters: 10, seed: 9 });
        let seed_codes = {
            let cols = (0..codes.m())
                .map(|j| codes.column(j)[..n_seed].to_vec())
                .collect::<Vec<_>>();
            PqCodes::from_columns(cols)
        };
        let mut ivf = IvfIndex::build(
            &seed_keys,
            &seed_codes,
            IvfConfig { n_list: 4, n_probe: 2, max_iters: 20, seed: 11 },
        );
        let mut buf = Vec::new();
        for t in n_seed..n_seed + n_app {
            book.assign_into(all_keys.row(t), &mut buf);
            ivf.append_token(t, all_keys.row(t), &buf);
        }
        assert_eq!(ivf.appended(), n_app);
        let before = ivf.cell_imbalance();
        assert!(before > 1.8, "drift must show as imbalance, got {before}");

        let moved = ivf.rebalance(&all_keys, 1);
        assert!(moved > 0, "rebalance must move tokens");
        assert_eq!(ivf.appended(), 0, "rebalance resets the drift meter");
        let after = ivf.cell_imbalance();
        assert!(after < before, "imbalance must drop: {before} -> {after}");
        // The partition invariant holds: every token in exactly one cell,
        // ids ascending.
        assert_eq!(partitioned_ids(&ivf), (0..n_seed + n_app).collect::<Vec<_>>());
        for c in 0..ivf.n_list() {
            let (ids, _) = ivf.cell(c);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "cell {c} ids not ascending");
        }
        // And probing the appended cluster finds appended tokens.
        let q: Vec<f32> = vec![1.5; dh];
        let probed = ivf.probe(&q);
        assert!(probed.iter().any(|&i| i >= n_seed), "appended cluster unreachable");
    }

    #[test]
    fn coarse_sample_covers_periodic_streams() {
        // Regression: s divisible by 5 with a period-5 key stream (five
        // interleaved "sessions"). A sampling step sharing the factor 5
        // with s would train the coarse centroids on one phase only and
        // leave the other four sessions' clusters unrepresented; the
        // coprime-step sample must see all five.
        let (s, dh) = (20_480usize, 8usize); // > COARSE_TRAIN_CAP, s % 5 == 0
        let mut rng = Rng64::new(55);
        let centers = Matrix::randn(5, dh, 4.0, &mut rng);
        let keys = Matrix::from_fn(s, dh, |i, j| {
            centers.get(i % 5, j) + 0.1 * rng.normal_f32(0.0, 1.0)
        });
        let (_, codes) =
            PqCodebook::train(&keys, PqConfig { m: 2, b: 4, max_iters: 5, seed: 56 });
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list: 5, n_probe: 1, max_iters: 10, seed: 57 },
        );
        // Five tight, well-separated clusters of 4096 tokens each: a
        // phase-covering sample yields near-balanced cells; a single-phase
        // sample collapses them (imbalance ≈ 5).
        let imb = ivf.cell_imbalance();
        assert!(imb < 1.5, "coarse sample missed stream phases: imbalance {imb:.2}");
    }

    #[test]
    fn search_matches_flat_pq_when_probing_everything() {
        let (keys, book, codes) = setup(500, 16, 6);
        let ivf = IvfIndex::build(
            &keys,
            &codes,
            IvfConfig { n_list: 8, n_probe: 8, max_iters: 10, seed: 7 },
        );
        let mut rng = Rng64::new(21);
        for _ in 0..6 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
            assert_eq!(ivf.search(&book, &q, 25), crate::pq_top_k(&book, &codes, &q, 25));
        }
    }
}
