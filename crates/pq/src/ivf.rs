//! IVF (inverted-file) coarse quantization — the paper's §5 extension.
//!
//! "Other retrieval techniques, such as IVF \[48\] ... could potentially
//! contribute to more efficient LLM inference." IVF partitions the keys into
//! `n_list` coarse cells by K-Means; a query then scores only the tokens in
//! its `n_probe` nearest cells instead of all `s` tokens, cutting ADC work
//! from O(s·m) to O(s·m·n_probe/n_list) at some recall cost. This module
//! implements IVF over the PQ codebook (IVF-PQ) so the trade-off can be
//! measured — see the `ivf_ablation` test and the extension notes in
//! EXPERIMENTS.md.

use crate::adc::AdcTable;
use crate::codebook::{PqCodebook, PqCodes};
use crate::kmeans::{kmeans, KMeansConfig};
use pqc_tensor::{dot, nearest_centroid_cached, row_sq_norms_into, top_k_indices, Matrix};

/// IVF configuration.
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse cells.
    pub n_list: usize,
    /// Cells probed per query.
    pub n_probe: usize,
    /// Coarse K-Means iterations.
    pub max_iters: usize,
    /// Seed for coarse clustering.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self { n_list: 16, n_probe: 4, max_iters: 10, seed: 0x1BF }
    }
}

/// An inverted-file index over token keys, layered on top of PQ codes.
///
/// ```
/// use pqc_pq::{IvfConfig, IvfIndex, PqCodebook, PqConfig};
/// use pqc_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::new(2);
/// let keys = Matrix::randn(512, 16, 1.0, &mut rng);
/// let (book, codes) = PqCodebook::train(&keys, PqConfig { m: 2, b: 5, max_iters: 8, seed: 2 });
/// let ivf = IvfIndex::build(&keys, IvfConfig { n_list: 16, n_probe: 4, max_iters: 8, seed: 3 });
/// let q: Vec<f32> = keys.row(42).to_vec();
/// let top = ivf.search(&book, &codes, &q, 10);
/// assert!(top.len() <= 10);
/// // Only ~n_probe/n_list of tokens were ADC-scored.
/// assert!(ivf.scan_fraction(&q, 512) < 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct IvfIndex {
    cfg: IvfConfig,
    /// `(n_list, dh)` coarse centroids.
    coarse: Matrix,
    /// `‖centroid‖²` per coarse cell, cached so append-time routing runs the
    /// batched `‖c‖² − 2·x·c` argmin.
    coarse_norms: Vec<f32>,
    /// Token ids per cell.
    lists: Vec<Vec<usize>>,
}

impl IvfIndex {
    /// Build the index from raw keys.
    pub fn build(keys: &Matrix, cfg: IvfConfig) -> Self {
        assert!(cfg.n_list >= 1 && cfg.n_probe >= 1);
        let res = kmeans(
            keys,
            &KMeansConfig { k: cfg.n_list, max_iters: cfg.max_iters, tol: 1e-4, seed: cfg.seed },
        );
        let n_list = res.centroids.rows();
        let mut lists = vec![Vec::new(); n_list];
        for (i, &a) in res.assignments.iter().enumerate() {
            lists[a as usize].push(i);
        }
        let mut coarse_norms = Vec::new();
        row_sq_norms_into(&res.centroids, &mut coarse_norms);
        Self { cfg, coarse: res.centroids, coarse_norms, lists }
    }

    /// Number of coarse cells actually built.
    pub fn n_list(&self) -> usize {
        self.lists.len()
    }

    /// Append a new token (assigned to its nearest coarse cell).
    pub fn append(&mut self, token_id: usize, key: &[f32]) {
        let (best, _) = nearest_centroid_cached(key, &self.coarse, &self.coarse_norms);
        self.lists[best].push(token_id);
    }

    /// The token ids inside the `n_probe` cells nearest to `query` (by
    /// inner product, matching the attention-scoring geometry).
    pub fn probe(&self, query: &[f32]) -> Vec<usize> {
        let scores: Vec<f32> =
            (0..self.coarse.rows()).map(|c| dot(query, self.coarse.row(c))).collect();
        let cells = top_k_indices(&scores, self.cfg.n_probe.min(self.lists.len()));
        let mut out = Vec::new();
        for c in cells {
            out.extend_from_slice(&self.lists[c]);
        }
        out
    }

    /// IVF-PQ top-k: ADC-score only the probed candidates.
    pub fn search(
        &self,
        book: &PqCodebook,
        codes: &PqCodes,
        query: &[f32],
        k: usize,
    ) -> Vec<usize> {
        let candidates = self.probe(query);
        if candidates.is_empty() {
            return Vec::new();
        }
        let table = AdcTable::build(book, query);
        let mut scores = Vec::with_capacity(candidates.len());
        table.score_subset_into(codes, &candidates, &mut scores);
        top_k_indices(&scores, k).into_iter().map(|j| candidates[j]).collect()
    }

    /// Fraction of tokens scored per query (the ADC-work saving).
    pub fn scan_fraction(&self, query: &[f32], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        self.probe(query).len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::PqConfig;
    use crate::exact_top_k;
    use pqc_tensor::{topk_recall, Rng64};

    fn setup(s: usize, dh: usize, seed: u64) -> (Matrix, PqCodebook, PqCodes) {
        let mut rng = Rng64::new(seed);
        let keys = Matrix::randn(s, dh, 1.0, &mut rng);
        let (book, codes) =
            PqCodebook::train(&keys, PqConfig { m: 4, b: 6, max_iters: 15, seed });
        (keys, book, codes)
    }

    #[test]
    fn lists_partition_tokens() {
        let (keys, _, _) = setup(300, 16, 1);
        let ivf = IvfIndex::build(&keys, IvfConfig::default());
        let mut all: Vec<usize> = ivf.lists.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn probing_reduces_scan() {
        let (keys, _, _) = setup(400, 16, 2);
        let ivf = IvfIndex::build(&keys, IvfConfig { n_list: 16, n_probe: 4, ..Default::default() });
        let mut rng = Rng64::new(9);
        let q: Vec<f32> = (0..16).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let frac = ivf.scan_fraction(&q, 400);
        assert!(frac < 0.7, "scan fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn ivf_ablation_recall_vs_scan() {
        // More probes => more scan => better recall against exact search.
        let (keys, book, codes) = setup(600, 16, 3);
        let mut rng = Rng64::new(10);
        let mut prev_recall = 0.0;
        for n_probe in [1usize, 4, 16] {
            let ivf = IvfIndex::build(
                &keys,
                IvfConfig { n_list: 16, n_probe, max_iters: 10, seed: 5 },
            );
            let mut recall = 0.0;
            let trials = 10;
            let mut rq = rng.fork(n_probe as u64);
            for _ in 0..trials {
                let q: Vec<f32> = (0..16).map(|_| rq.normal_f32(0.0, 1.0)).collect();
                let exact = exact_top_k(&keys, &q, 30);
                let got = ivf.search(&book, &codes, &q, 30);
                recall += topk_recall(&exact, &got);
            }
            recall /= trials as f64;
            assert!(recall + 0.12 >= prev_recall, "recall regressed: {recall} vs {prev_recall}");
            prev_recall = prev_recall.max(recall);
        }
        // Probing everything should recover most of plain PQ's recall.
        assert!(prev_recall > 0.5, "full-probe recall {prev_recall}");
    }

    #[test]
    fn append_routes_to_a_cell() {
        let (keys, _, _) = setup(100, 16, 4);
        let mut ivf = IvfIndex::build(&keys, IvfConfig::default());
        let before: usize = ivf.lists.iter().map(|l| l.len()).sum();
        ivf.append(100, keys.row(0));
        let after: usize = ivf.lists.iter().map(|l| l.len()).sum();
        assert_eq!(after, before + 1);
        // The appended token is findable with a query aligned to its key.
        let q: Vec<f32> = keys.row(0).iter().map(|v| v * 2.0).collect();
        assert!(ivf.probe(&q).contains(&100));
    }
}
