//! Needle-in-a-haystack: which KVCache policies can still find one planted
//! fact after compression?
//!
//! ```sh
//! cargo run --release --example needle_in_haystack
//! ```
//!
//! Plants an 8-token "needle" at half depth in a 1024-token haystack, then
//! decodes with re-probing driver tokens under each policy at a 1/10 token
//! budget, reporting (a) whether the needle's position was retrieved and
//! (b) output fidelity vs exact full attention.

use pqcache::llm::{LlmConfig, Model};
use pqcache::workloads::{evaluate_method, needle, reference, EvalConfig, MethodSpec, VocabLayout};

fn main() {
    let model = Model::new(LlmConfig::small());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let w = needle(1024, 0.5, &layout, 0x0E0);
    println!(
        "haystack: {} tokens; needle at positions {:?}",
        w.tokens.len(),
        (w.planted.first().unwrap(), w.planted.last().unwrap())
    );

    let mut cfg = EvalConfig::default();
    cfg.session.token_ratio = 0.1; // attend to 1/10 of the context
    let rf = reference(&model, &w, &cfg);

    println!(
        "\n{:>14} | {:>14} {:>12} {:>12}",
        "method", "needle found", "fidelity", "H2D bytes"
    );
    for spec in [
        MethodSpec::Oracle,
        MethodSpec::StreamingLlm,
        MethodSpec::H2o,
        MethodSpec::SnapKv,
        MethodSpec::PyramidKv,
        MethodSpec::InfLlm,
        MethodSpec::Sparq,
        MethodSpec::pqcache_default(),
    ] {
        let r = evaluate_method(&model, &w, &rf, spec, &cfg);
        println!(
            "{:>14} | {:>13.0}% {:>12.2} {:>12}",
            r.method,
            100.0 * r.planted_recall,
            r.agreement,
            r.h2d_bytes
        );
    }
    println!("\nPQCache finds the needle through PQ codes alone (zero query-time proxy traffic);");
    println!("InfLLM's block representatives hide it; dropping methods gamble on prefill scores.");
}
