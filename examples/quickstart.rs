//! Quickstart: run long-context generation with PQCache-managed KVCache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the simulation transformer, prefills a 768-token prompt, manages
//! the KVCache with product quantization (offload + PQ retrieval + GPU block
//! cache), generates tokens, and prints what moved across the simulated
//! PCIe link — versus what full attention would have needed.

use pqcache::core::{SelectiveSession, SessionConfig};
use pqcache::llm::{LlmConfig, Model};
use pqcache::workloads::{MethodSpec, VocabLayout};
use pqcache::tensor::Rng64;

fn main() {
    // 1. A model. `small()` is the repo's Llama-8B stand-in (GQA 2:1,
    //    8 layers). Weights are deterministic from the config seed.
    let model = Model::new(LlmConfig::small());
    println!("model: {} parameters, {} layers, {}/{} heads",
        model.param_count(), model.config().n_layers, model.config().n_heads, model.config().n_kv_heads);

    // 2. A long prompt (random tokens here; see the other examples for
    //    structured workloads).
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let mut rng = Rng64::new(7);
    let _ = layout;
    let prompt: Vec<u32> = (0..768).map(|_| rng.below(700) as u32).collect();

    // 3. PQCache policy: m=2 sub-spaces, 6-bit codes (the paper's default),
    //    15 K-Means iterations.
    let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 32.0);

    // 4. Session: 1/5 of tokens in selective attention, 4 initial + 32 local
    //    tokens pinned on GPU, 512-token LFU block cache.
    let cfg = SessionConfig::default();
    let start = SelectiveSession::start(&model, policy, cfg, &prompt);
    let mut session = start.session;

    // 5. Generate.
    let generated = session.generate(&start.logits, 32);
    println!("generated {} tokens: {:?}...", generated.len(), &generated[..8]);

    // 6. What did that cost?
    let ts = session.transfer_stats();
    let cs = session.cache_stats();
    println!("\n--- data movement (simulated PCIe) ---");
    println!("prefill offload (D2H): {:>10} bytes", ts.d2h_bytes);
    println!("decode fetches  (H2D): {:>10} bytes over {} ops", ts.h2d_bytes, ts.h2d_ops);
    println!("GPU cache hit rate:    {:>10.1}%", 100.0 * cs.hit_rate());
    let s = prompt.len() + generated.len();
    let full_bytes = (2 * s * model.config().n_kv_heads * model.config().head_dim * 2
        * model.config().n_layers
        * generated.len()) as u64;
    println!(
        "full-attention offloading would have moved ~{} bytes ({}x more)",
        full_bytes,
        full_bytes / ts.h2d_bytes.max(1)
    );
    println!("\ntoken budget per step: {} middle + {} init + {} local of {} total",
        session.middle_budget(), cfg.n_init, cfg.n_local, s);
}
