//! Latency profiling at the paper's hardware scale.
//!
//! ```sh
//! cargo run --release --example latency_profile [seq_len]
//! ```
//!
//! Uses the analytical cost model (Llama-3-8B shapes on an RTX 4090 +
//! PCIe 1.0 x16 testbed) and the discrete-event overlap simulator to print a
//! PQCache latency profile for one context length: the prefill/decode time
//! decompositions, adaptive K-Means budget, TT2T, and TPOT against the
//! baselines.

use pqcache::core::{KmeansIters, LatencyMethod, LatencyModel};

fn main() {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64 * 1024);
    let k = (s / 5).min(4096);
    let lm = LatencyModel::paper_default();
    let adaptive = KmeansIters::Adaptive { min: 1, max: 100 };
    let pqc = LatencyMethod::PqCache { m: 2, b: 6, iters: adaptive, cache_hit: 0.6 };

    println!("context: {s} tokens, retrieval set k = {k}");
    println!("adaptive K-Means budget at this length: {} iterations", lm.kmeans_iters(adaptive, s, 2, 6));

    let pre = lm.prefill(&pqc, s);
    println!("\n--- prefill decomposition ---");
    println!("GPU compute : {:.3}s", pre.decomp.compute);
    println!("KV offload  : {:.3}s (overlapped)", pre.decomp.offload);
    println!("K-Means     : {:.3}s (overlapped)", pre.decomp.kmeans);
    println!("end-to-end  : {:.3}s ({:.0}% of work hidden by overlap)",
        pre.decomp.end_to_end, 100.0 * pre.decomp.overlap_savings());

    let dec = lm.decode_step(&pqc, s, k, &[]);
    println!("\n--- decode-step decomposition ---");
    println!("PQ search   : {:.2}ms", dec.decomp.pq_search * 1e3);
    println!("code comm   : {:.2}ms (prefetched)", dec.decomp.pq_comm * 1e3);
    println!("top-k fetch : {:.2}ms (after cache)", dec.decomp.topk_fetch * 1e3);
    println!("LLM compute : {:.2}ms", dec.decomp.compute * 1e3);
    println!("end-to-end  : {:.2}ms", dec.decomp.end_to_end * 1e3);

    println!("\n--- method comparison at s = {s} ---");
    println!("{:>12} | {:>10} {:>12}", "method", "TT2T", "TPOT");
    for m in [
        LatencyMethod::H2o,
        LatencyMethod::SnapKv,
        LatencyMethod::Sparq { r: 2 },
        LatencyMethod::InfLlm { block: 128, reps: 2 },
        pqc,
    ] {
        let oom = matches!(m, LatencyMethod::H2o) && lm.h2o_prefill_oom(s);
        println!(
            "{:>12} | {:>9.2}s {:>10.2}ms{}",
            m.name(),
            lm.tt2t(&m, s, k),
            lm.tpot(&m, s, k, 0) * 1e3,
            if oom { "  (OOM on one 24GB GPU)" } else { "" }
        );
    }
    println!("\nHuman reading speed: ~180ms/token. SPARQ exceeds it at long contexts; PQCache does not.");
}
