//! Long-document QA with the question at the END vs at the START.
//!
//! ```sh
//! cargo run --release --example longdoc_qa
//! ```
//!
//! SnapKV-style methods rank tokens by the prompt's final window; they look
//! great when the question is last (the standard benchmark layout) and go
//! blind when it is first. PQCache retrieves per decode query and does not
//! care where the question sits — the paper's Table 3 experiment.

use pqcache::llm::{LlmConfig, Model};
use pqcache::workloads::{
    evaluate_method, qa, reference, EvalConfig, MethodSpec, QuestionPosition, VocabLayout,
};

fn main() {
    let model = Model::new(LlmConfig::small());
    let layout = VocabLayout::for_vocab(model.config().vocab_size);
    let mut cfg = EvalConfig::default();
    cfg.session.token_ratio = 0.045; // tight budget: ~10 middle tokens of ~990

    for (label, pos) in [
        ("question LAST (standard benchmarks)", QuestionPosition::End),
        ("question FIRST (Table 3 layout)", QuestionPosition::Start),
    ] {
        println!("\n=== {label} ===");
        println!("{:>14} | {:>12} {:>12}", "method", "fact found", "fidelity");
        // Average over a few documents to smooth workload noise.
        let docs: Vec<_> = (0..4).map(|i| qa(1024, 16, pos, &layout, 0x0A + i)).collect();
        for spec in [MethodSpec::SnapKv, MethodSpec::PyramidKv, MethodSpec::pqcache_default()] {
            let mut recall = 0.0;
            let mut fid = 0.0;
            for w in &docs {
                let rf = reference(&model, w, &cfg);
                let r = evaluate_method(&model, w, &rf, spec, &cfg);
                recall += r.planted_recall;
                fid += r.agreement;
            }
            let n = docs.len() as f64;
            println!("{:>14} | {:>11.0}% {:>12.2}", spec.name(), 100.0 * recall / n, fid / n);
        }
    }
    println!("\nExpected pattern: the droppers ride the question when it is last in the prompt;");
    println!("once it moves to the front their observation window is filler and their recall drops,");
    println!("while PQCache's query-time retrieval holds (paper Table 3: +7.10% for PQCache).");
}
