//! # pqcache
//!
//! Umbrella crate for the PQCache reproduction (SIGMOD 2025): re-exports the
//! public API of every subsystem crate so applications can depend on a
//! single crate.
//!
//! ```
//! use pqcache::llm::{LlmConfig, Model};
//! use pqcache::core::{SelectiveSession, SessionConfig};
//! use pqcache::workloads::MethodSpec;
//!
//! let model = Model::new(LlmConfig::tiny());
//! let prompt: Vec<u32> = (0..64).map(|i| (i * 7 % 200) as u32).collect();
//! let policy = MethodSpec::pqcache_default().build(model.config().head_dim, 1.0 / 16.0);
//! let cfg = SessionConfig { n_init: 2, n_local: 8, ..Default::default() };
//! let start = SelectiveSession::start(&model, policy, cfg, &prompt);
//! let mut session = start.session;
//! let generated = session.generate(&start.logits, 4);
//! assert_eq!(generated.len(), 4);
//! ```

#![warn(missing_docs)]

/// Dense linear algebra, RNG, statistics (re-export of `pqc-tensor`).
pub use pqc_tensor as tensor;

/// Product quantization: K-Means, codebooks, ADC (re-export of `pqc-pq`).
pub use pqc_pq as pq;

/// Simulated memory hierarchy and cost model (re-export of `pqc-memhier`).
pub use pqc_memhier as memhier;

/// Transformer substrate (re-export of `pqc-llm`).
pub use pqc_llm as llm;

/// Block-level GPU cache (re-export of `pqc-cache`).
pub use pqc_cache as cache;

/// Selection policies: baselines + PQCache (re-export of `pqc-policies`).
pub use pqc_policies as policies;

/// The PQCache engine (re-export of `pqc-core`).
pub use pqc_core as core;

/// Multi-session serving layer: sharded `ServeEngine` with continuous
/// batching (re-export of `pqc-serve`).
pub use pqc_serve as serve;

/// Synthetic workloads and the evaluation harness (re-export of
/// `pqc-workloads`).
pub use pqc_workloads as workloads;
